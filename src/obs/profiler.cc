#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>

#include "obs/json.h"
#include "support/diag.h"

namespace ldx::obs {

namespace {

std::uint64_t
sumVec(const std::vector<std::uint64_t> &v)
{
    std::uint64_t s = 0;
    for (std::uint64_t x : v)
        s += x;
    return s;
}

std::uint64_t
sumAll(const std::vector<std::vector<std::uint64_t>> &vv)
{
    std::uint64_t s = 0;
    for (const auto &v : vv)
        s += sumVec(v);
    return s;
}

/** Leaf frame label for one site: `op@line:col` (or just `op`). */
std::string
siteLabel(const SiteMeta &m)
{
    std::string s = m.op;
    if (m.line > 0) {
        s += '@';
        s += std::to_string(m.line);
        s += ':';
        s += std::to_string(m.col);
    }
    return s;
}

/**
 * Root-first dominant-caller chain for @p fn: follow the heaviest
 * incoming call edge (ties to the lower caller id) until a function
 * with root entries, a function with no callers, or a cycle.
 */
std::vector<std::size_t>
dominantChain(const SiteCounters &c, std::size_t fn)
{
    std::vector<std::size_t> path{fn};
    std::vector<bool> seen(c.numFns, false);
    seen[fn] = true;
    std::size_t cur = fn;
    while (c.rootCalls[cur] == 0) {
        std::size_t best = c.numFns;
        std::uint64_t best_count = 0;
        for (std::size_t caller = 0; caller < c.numFns; ++caller) {
            std::uint64_t n = c.callEdges[caller * c.numFns + cur];
            if (n > best_count) {
                best_count = n;
                best = caller;
            }
        }
        if (best == c.numFns || seen[best])
            break;
        seen[best] = true;
        path.push_back(best);
        cur = best;
    }
    std::reverse(path.begin(), path.end());
    return path;
}

void
appendGateStalls(std::string &out, const SiteStallMap &gates)
{
    out += '[';
    bool first = true;
    for (const auto &[site, s] : gates) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"site\":" +
               jsonNumber(static_cast<std::int64_t>(site));
        out += ",\"episodes\":" + jsonNumber(s.episodes);
        out += ",\"polls\":" + jsonNumber(s.polls);
        out += ",\"expirations\":" + jsonNumber(s.expirations);
        out += '}';
    }
    out += ']';
}

} // namespace

void
SiteCounters::shape(const std::vector<std::size_t> &sites_per_fn)
{
    if (shaped()) {
        checkInvariant(retired.size() == sites_per_fn.size(),
                       "SiteCounters reshaped for another program");
        for (std::size_t f = 0; f < sites_per_fn.size(); ++f)
            checkInvariant(retired[f].size() == sites_per_fn[f],
                           "SiteCounters reshaped for another program");
        return;
    }
    numFns = sites_per_fn.size();
    retired.resize(numFns);
    syscalls.resize(numFns);
    sysTicks.resize(numFns);
    stallPolls.resize(numFns);
    for (std::size_t f = 0; f < numFns; ++f) {
        retired[f].assign(sites_per_fn[f], 0);
        syscalls[f].assign(sites_per_fn[f], 0);
        sysTicks[f].assign(sites_per_fn[f], 0);
        stallPolls[f].assign(sites_per_fn[f], 0);
    }
    callEdges.assign(numFns * numFns, 0);
    rootCalls.assign(numFns, 0);
}

void
SiteCounters::merge(const SiteCounters &other)
{
    checkInvariant(numFns == other.numFns,
                   "SiteCounters::merge shape mismatch");
    for (std::size_t f = 0; f < numFns; ++f) {
        for (std::size_t i = 0; i < retired[f].size(); ++i) {
            retired[f][i] += other.retired[f][i];
            syscalls[f][i] += other.syscalls[f][i];
            sysTicks[f][i] += other.sysTicks[f][i];
            stallPolls[f][i] += other.stallPolls[f][i];
        }
    }
    for (std::size_t i = 0; i < callEdges.size(); ++i)
        callEdges[i] += other.callEdges[i];
    for (std::size_t i = 0; i < rootCalls.size(); ++i)
        rootCalls[i] += other.rootCalls[i];
    for (const auto &[site, s] : other.gateStalls) {
        SiteStall &dst = gateStalls[site];
        dst.episodes += s.episodes;
        dst.polls += s.polls;
        dst.expirations += s.expirations;
    }
}

std::uint64_t
SiteCounters::totalRetired() const
{
    return sumAll(retired);
}

std::string
profileReportJson(const ProfileMeta &meta, const SiteCounters &master,
                  const SiteCounters *slave,
                  const ProfileReportOptions &opt)
{
    checkInvariant(meta.fns.size() == master.numFns,
                   "profile metadata does not match the counters");

    std::string out = "{\"schema\":\"ldx-profile-v1\"";
    out += ",\"program\":" + jsonString(meta.program);

    auto totals = [](const SiteCounters &c) {
        std::string t = "{\"retired\":" + jsonNumber(sumAll(c.retired));
        t += ",\"syscalls\":" + jsonNumber(sumAll(c.syscalls));
        t += ",\"sys_ticks\":" + jsonNumber(sumAll(c.sysTicks));
        t += '}';
        return t;
    };
    out += ",\"totals\":" + totals(master);
    if (slave)
        out += ",\"slave_totals\":" + totals(*slave);

    out += ",\"functions\":[";
    bool first_fn = true;
    for (std::size_t f = 0; f < master.numFns; ++f) {
        const std::uint64_t fn_retired = sumVec(master.retired[f]);
        std::uint64_t incoming = master.rootCalls[f];
        for (std::size_t c = 0; c < master.numFns; ++c)
            incoming += master.callEdges[c * master.numFns + f];
        if (fn_retired == 0 && incoming == 0)
            continue;
        if (!first_fn)
            out += ',';
        first_fn = false;
        out += "{\"name\":" + jsonString(meta.fns[f].name);
        out += ",\"retired\":" + jsonNumber(fn_retired);
        out += ",\"syscalls\":" + jsonNumber(sumVec(master.syscalls[f]));
        out += ",\"sys_ticks\":" + jsonNumber(sumVec(master.sysTicks[f]));
        out += ",\"calls\":" + jsonNumber(incoming);

        // Top-N sites by retired count (ties to the lower offset),
        // re-sorted by offset so the listing reads in program order.
        std::vector<std::size_t> idx;
        for (std::size_t i = 0; i < master.retired[f].size(); ++i)
            if (master.retired[f][i] != 0)
                idx.push_back(i);
        std::sort(idx.begin(), idx.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (master.retired[f][a] != master.retired[f][b])
                          return master.retired[f][a] >
                                 master.retired[f][b];
                      return a < b;
                  });
        if (idx.size() > opt.topSites)
            idx.resize(opt.topSites);
        std::sort(idx.begin(), idx.end());
        out += ",\"sites\":[";
        for (std::size_t r = 0; r < idx.size(); ++r) {
            std::size_t i = idx[r];
            const SiteMeta &m = meta.fns[f].sites[i];
            if (r)
                out += ',';
            out += "{\"idx\":" +
                   jsonNumber(static_cast<std::uint64_t>(i));
            out += ",\"op\":" + jsonString(m.op);
            out += ",\"line\":" +
                   jsonNumber(static_cast<std::int64_t>(m.line));
            out += ",\"col\":" +
                   jsonNumber(static_cast<std::int64_t>(m.col));
            if (m.siteId >= 0)
                out += ",\"site\":" + jsonNumber(m.siteId);
            out += ",\"retired\":" + jsonNumber(master.retired[f][i]);
            if (master.syscalls[f][i]) {
                out += ",\"syscalls\":" +
                       jsonNumber(master.syscalls[f][i]);
                out += ",\"sys_ticks\":" +
                       jsonNumber(master.sysTicks[f][i]);
            }
            out += '}';
        }
        out += "]}";
    }
    out += ']';

    out += ",\"call_edges\":[";
    bool first_edge = true;
    for (std::size_t c = 0; c < master.numFns; ++c) {
        for (std::size_t f = 0; f < master.numFns; ++f) {
            std::uint64_t n = master.callEdges[c * master.numFns + f];
            if (!n)
                continue;
            if (!first_edge)
                out += ',';
            first_edge = false;
            out += "{\"caller\":" + jsonString(meta.fns[c].name);
            out += ",\"callee\":" + jsonString(meta.fns[f].name);
            out += ",\"count\":" + jsonNumber(n);
            out += '}';
        }
    }
    out += ']';

    if (slave) {
        // Every site whose deterministic counts differ between the
        // sides: the guest locations where the mutated input changed
        // behaviour. Capped (in (fn, idx) order) to keep pathological
        // divergence from exploding the report.
        constexpr std::size_t kDiffCap = 256;
        std::size_t emitted = 0;
        bool truncated = false;
        out += ",\"diff\":[";
        for (std::size_t f = 0;
             f < master.numFns && !truncated; ++f) {
            for (std::size_t i = 0; i < master.retired[f].size(); ++i) {
                bool differs =
                    master.retired[f][i] != slave->retired[f][i] ||
                    master.syscalls[f][i] != slave->syscalls[f][i] ||
                    master.sysTicks[f][i] != slave->sysTicks[f][i];
                if (!differs)
                    continue;
                if (emitted == kDiffCap) {
                    truncated = true;
                    break;
                }
                const SiteMeta &m = meta.fns[f].sites[i];
                if (emitted)
                    out += ',';
                ++emitted;
                out += "{\"fn\":" + jsonString(meta.fns[f].name);
                out += ",\"idx\":" +
                       jsonNumber(static_cast<std::uint64_t>(i));
                out += ",\"op\":" + jsonString(m.op);
                out += ",\"line\":" +
                       jsonNumber(static_cast<std::int64_t>(m.line));
                out += ",\"col\":" +
                       jsonNumber(static_cast<std::int64_t>(m.col));
                if (m.siteId >= 0)
                    out += ",\"site\":" + jsonNumber(m.siteId);
                out += ",\"master_retired\":" +
                       jsonNumber(master.retired[f][i]);
                out += ",\"slave_retired\":" +
                       jsonNumber(slave->retired[f][i]);
                if (master.syscalls[f][i] || slave->syscalls[f][i]) {
                    out += ",\"master_syscalls\":" +
                           jsonNumber(master.syscalls[f][i]);
                    out += ",\"slave_syscalls\":" +
                           jsonNumber(slave->syscalls[f][i]);
                }
                out += '}';
            }
        }
        out += ']';
        if (truncated)
            out += ",\"diff_truncated\":true";
    }

    if (opt.includeStalls) {
        // Driver-dependent: poll counts and gate episodes move with
        // scheduling, so this section is opt-in and never byte-diffed.
        out += ",\"stalls\":{\"master\":{\"vm_polls\":" +
               jsonNumber(sumAll(master.stallPolls));
        out += ",\"gates\":";
        appendGateStalls(out, master.gateStalls);
        out += '}';
        if (slave) {
            out += ",\"slave\":{\"vm_polls\":" +
                   jsonNumber(sumAll(slave->stallPolls));
            out += ",\"gates\":";
            appendGateStalls(out, slave->gateStalls);
            out += '}';
        }
        out += '}';
    }

    out += '}';
    return out;
}

std::string
collapsedStacks(const ProfileMeta &meta, const SiteCounters &c)
{
    checkInvariant(meta.fns.size() == c.numFns,
                   "profile metadata does not match the counters");
    std::string out;
    for (std::size_t f = 0; f < c.numFns; ++f) {
        if (sumVec(c.retired[f]) == 0)
            continue;
        std::vector<std::size_t> chain = dominantChain(c, f);
        std::string prefix;
        for (std::size_t fn : chain) {
            prefix += meta.fns[fn].name;
            prefix += ';';
        }
        for (std::size_t i = 0; i < c.retired[f].size(); ++i) {
            if (!c.retired[f][i])
                continue;
            out += prefix;
            out += siteLabel(meta.fns[f].sites[i]);
            out += ' ';
            out += std::to_string(c.retired[f][i]);
            out += '\n';
        }
    }
    return out;
}

std::string
annotateSource(const ProfileMeta &meta, const SiteCounters &master,
               const SiteCounters *slave)
{
    checkInvariant(meta.fns.size() == master.numFns,
                   "profile metadata does not match the counters");
    const std::size_t n_lines = meta.sourceLines.size();
    std::vector<std::uint64_t> retired(n_lines + 1, 0);
    std::vector<std::uint64_t> ticks(n_lines + 1, 0);
    std::vector<std::int64_t> delta(n_lines + 1, 0);
    for (std::size_t f = 0; f < master.numFns; ++f) {
        for (std::size_t i = 0; i < master.retired[f].size(); ++i) {
            int line = meta.fns[f].sites[i].line;
            if (line < 1 || static_cast<std::size_t>(line) > n_lines)
                continue;
            std::size_t l = static_cast<std::size_t>(line);
            retired[l] += master.retired[f][i];
            ticks[l] += master.sysTicks[f][i];
            if (slave)
                delta[l] +=
                    static_cast<std::int64_t>(master.retired[f][i]) -
                    static_cast<std::int64_t>(slave->retired[f][i]);
        }
    }

    std::string out = "# ldx profile: " + meta.program + "\n";
    out += slave ? "#      retired    sys_ticks     Δretired | source\n"
                 : "#      retired    sys_ticks | source\n";
    char buf[96];
    for (std::size_t l = 1; l <= n_lines; ++l) {
        if (retired[l] || ticks[l] || (slave && delta[l])) {
            std::snprintf(buf, sizeof buf, "%12llu %12llu",
                          static_cast<unsigned long long>(retired[l]),
                          static_cast<unsigned long long>(ticks[l]));
            out += buf;
            if (slave) {
                std::snprintf(buf, sizeof buf, " %+12lld",
                              static_cast<long long>(delta[l]));
                out += buf;
            }
        } else {
            out.append(slave ? 38 : 25, ' ');
        }
        out += " | ";
        out += meta.sourceLines[l - 1];
        out += '\n';
    }
    return out;
}

} // namespace ldx::obs
