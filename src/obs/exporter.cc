#include "obs/exporter.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <utility>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "obs/json.h"

namespace ldx::obs {

namespace {

/** Prometheus metric name: `ldx_` prefix, [a-zA-Z0-9_] only. */
std::string
promName(const std::string &name)
{
    std::string out = "ldx_";
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

/** A double in the exposition format (Prometheus accepts %g). */
std::string
promNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace

std::string
renderPrometheus(const MetricsSnapshot &snap, const BuildInfo *build)
{
    std::string out;
    if (build && !build->version.empty()) {
        out += "# TYPE ldx_build_info gauge\n";
        out += "ldx_build_info{version=\"" + build->version +
               "\",dispatch=\"" + build->dispatch +
               "\",computed_goto=\"" +
               (build->computedGoto ? "true" : "false") + "\"} 1\n";
    }
    for (const auto &[name, value] : snap.counters) {
        std::string n = promName(name);
        out += "# TYPE " + n + " counter\n";
        out += n + " " + std::to_string(value) + "\n";
    }
    for (const auto &[name, value] : snap.gauges) {
        std::string n = promName(name);
        out += "# TYPE " + n + " gauge\n";
        out += n + " " + promNumber(value) + "\n";
    }
    for (const HistogramSnapshot &h : snap.histograms) {
        std::string n = promName(h.name);
        out += "# TYPE " + n + " histogram\n";
        // Exposition buckets are cumulative; the snapshot's are not.
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            cum += h.counts[i];
            std::string le = i < h.bounds.size()
                                 ? promNumber(h.bounds[i])
                                 : std::string("+Inf");
            out += n + "_bucket{le=\"" + le +
                   "\"} " + std::to_string(cum) + "\n";
        }
        out += n + "_sum " + promNumber(h.sum) + "\n";
        out += n + "_count " + std::to_string(h.count) + "\n";
    }
    return out;
}

bool
stderrIsTty()
{
#if defined(_WIN32)
    return false;
#else
    return isatty(STDERR_FILENO) != 0;
#endif
}

Exporter::Exporter(const Registry &registry, ExporterConfig cfg)
    : registry_(registry), cfg_(std::move(cfg))
{
    if (cfg_.intervalMs < 1)
        cfg_.intervalMs = 1;
}

Exporter::~Exporter()
{
    stop();
}

bool
Exporter::start()
{
    if (running_)
        return true;
    if (!cfg_.jsonlPath.empty()) {
        jsonl_.open(cfg_.jsonlPath,
                    std::ios::binary | std::ios::app);
        if (!jsonl_) {
            error_ = "cannot write " + cfg_.jsonlPath;
            return false;
        }
    }
    if (!cfg_.promPath.empty()) {
        // Probe writability up front so a bad path fails at start(),
        // not silently on the sampler thread.
        std::ofstream probe(cfg_.promPath, std::ios::binary);
        if (!probe) {
            error_ = "cannot write " + cfg_.promPath;
            return false;
        }
    }
    stopRequested_ = false;
    running_ = true;
    thread_ = std::thread(&Exporter::run, this);
    return true;
}

void
Exporter::stop()
{
    if (!running_)
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopRequested_ = true;
    }
    cv_.notify_all();
    thread_.join();
    running_ = false;
    // Final sample: the post-drain registry state always lands in
    // both sinks, however short the run was.
    exportOnce();
    if (jsonl_.is_open())
        jsonl_.flush();
}

void
Exporter::run()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        if (cv_.wait_for(lock,
                         std::chrono::milliseconds(cfg_.intervalMs),
                         [&] { return stopRequested_; }))
            return; // stop() takes the final sample
        lock.unlock();
        exportOnce();
        lock.lock();
    }
}

void
Exporter::exportOnce()
{
    MetricsSnapshot snap = registry_.snapshot();
    std::uint64_t seq =
        samples_.fetch_add(1, std::memory_order_relaxed);
    if (jsonl_.is_open()) {
        std::string line = "{\"ts_us\":" + std::to_string(nowUs());
        line += ",\"seq\":" + std::to_string(seq);
        line += ",\"metrics\":" + snap.toJson() + "}\n";
        jsonl_ << line;
        jsonl_.flush();
    }
    if (!cfg_.promPath.empty()) {
        // Atomic replace: a concurrent reader never sees a torn file.
        std::string tmp = cfg_.promPath + ".tmp";
        {
            std::ofstream out(tmp, std::ios::binary);
            if (!out)
                return;
            out << renderPrometheus(snap, &cfg_.build);
        }
        std::error_code ec;
        std::filesystem::rename(tmp, cfg_.promPath, ec);
    }
}

ProgressMeter::ProgressMeter(const Registry &registry,
                             std::ostream &out, int intervalMs)
    : registry_(registry), out_(out),
      intervalMs_(intervalMs < 1 ? 1 : intervalMs),
      t0_(std::chrono::steady_clock::now())
{}

ProgressMeter::~ProgressMeter()
{
    stop();
}

void
ProgressMeter::start()
{
    if (running_)
        return;
    stopRequested_ = false;
    running_ = true;
    t0_ = std::chrono::steady_clock::now();
    thread_ = std::thread(&ProgressMeter::run, this);
}

void
ProgressMeter::stop()
{
    if (!running_)
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopRequested_ = true;
    }
    cv_.notify_all();
    thread_.join();
    running_ = false;
    out_ << '\r' << renderLine() << '\n';
    out_.flush();
}

std::string
ProgressMeter::renderLine() const
{
    MetricsSnapshot snap = registry_.snapshot();
    double total = snap.gaugeOr("campaign.queries.planned");
    std::uint64_t hits = snap.counterOr("campaign.cache.hits");
    std::uint64_t misses = snap.counterOr("campaign.cache.misses");
    std::uint64_t done = snap.counterOr("campaign.sched.completed") +
                         hits;
    double active = snap.gaugeOr("campaign.sched.active_workers");
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0_)
                         .count();
    double rate = elapsed > 0.0 ? done / elapsed : 0.0;
    double remaining = total > done ? total - done : 0.0;
    double eta = rate > 0.0 ? remaining / rate : 0.0;
    double hit_pct = hits + misses
                         ? 100.0 * hits / (hits + misses)
                         : 0.0;
    double pct = total > 0.0 ? 100.0 * done / total : 0.0;

    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "[ldx] %llu/%.0f queries (%.1f%%) | %.1f q/s | "
                  "ETA %.1fs | cache %.1f%% | %d workers",
                  static_cast<unsigned long long>(done), total, pct,
                  rate, eta, hit_pct, static_cast<int>(active));
    return buf;
}

void
ProgressMeter::run()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        if (cv_.wait_for(lock,
                         std::chrono::milliseconds(intervalMs_),
                         [&] { return stopRequested_; }))
            return; // stop() renders the final line
        lock.unlock();
        out_ << '\r' << renderLine();
        out_.flush();
        lock.lock();
    }
}

} // namespace ldx::obs
