#include "obs/registry.h"

#include <algorithm>
#include <chrono>

#include "obs/json.h"
#include "support/diag.h"

namespace ldx::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1])
{
    checkInvariant(std::is_sorted(bounds_.begin(), bounds_.end()),
                   "histogram bounds must be ascending");
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(double x)
{
    std::size_t i = static_cast<std::size_t>(
        std::upper_bound(bounds_.begin(), bounds_.end(), x) -
        bounds_.begin());
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + x,
                                       std::memory_order_relaxed))
        ;
}

double
HistogramSnapshot::percentile(double p) const
{
    // Rank against the bucket total, not the `count` header: a
    // snapshot races relaxed bucket/count increments, so the two can
    // disagree by a few in-flight observations. Basing the rank on
    // the buckets themselves keeps the walk self-consistent, and an
    // empty (or torn-to-empty) snapshot deterministically reports 0
    // rather than falling through to a stale bound — exporter samples
    // taken before the first observation are well-defined.
    std::uint64_t total = 0;
    for (std::uint64_t c : counts)
        total += c;
    if (total == 0)
        return 0.0;
    double rank = (std::clamp(p, 0.0, 100.0) / 100.0) *
                  static_cast<double>(total);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        std::uint64_t in_bucket = counts[i];
        if (in_bucket == 0)
            continue;
        if (static_cast<double>(seen + in_bucket) >= rank) {
            double lo = i == 0 ? 0.0 : bounds[i - 1];
            if (i >= bounds.size()) // overflow bucket: no upper bound
                return bounds.empty() ? 0.0 : bounds.back();
            double hi = bounds[i];
            double frac = (rank - static_cast<double>(seen)) /
                          static_cast<double>(in_bucket);
            return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
        }
        seen += in_bucket;
    }
    return bounds.empty() ? 0.0 : bounds.back();
}

std::uint64_t
MetricsSnapshot::counterOr(const std::string &name,
                           std::uint64_t dflt) const
{
    for (const auto &[n, v] : counters) {
        if (n == name)
            return v;
    }
    return dflt;
}

double
MetricsSnapshot::gaugeOr(const std::string &name, double dflt) const
{
    for (const auto &[n, v] : gauges) {
        if (n == name)
            return v;
    }
    return dflt;
}

std::string
MetricsSnapshot::toJson() const
{
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : counters) {
        if (!first)
            out += ',';
        first = false;
        appendJsonString(out, name);
        out += ':';
        out += jsonNumber(value);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : gauges) {
        if (!first)
            out += ',';
        first = false;
        appendJsonString(out, name);
        out += ':';
        out += jsonNumber(value);
    }
    out += "},\"histograms\":[";
    first = true;
    for (const HistogramSnapshot &h : histograms) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"name\":";
        appendJsonString(out, h.name);
        out += ",\"bounds\":[";
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
            if (i)
                out += ',';
            out += jsonNumber(h.bounds[i]);
        }
        out += "],\"counts\":[";
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            if (i)
                out += ',';
            out += jsonNumber(h.counts[i]);
        }
        out += "],\"count\":" + jsonNumber(h.count);
        out += ",\"sum\":" + jsonNumber(h.sum);
        out += ",\"p50\":" + jsonNumber(h.percentile(50));
        out += ",\"p95\":" + jsonNumber(h.percentile(95));
        out += ",\"p99\":" + jsonNumber(h.percentile(99));
        out += '}';
    }
    out += "]}";
    return out;
}

void
MetricsSnapshot::writeText(std::ostream &os) const
{
    std::size_t width = 0;
    for (const auto &[name, value] : counters)
        width = std::max(width, name.size());
    for (const auto &[name, value] : gauges)
        width = std::max(width, name.size());
    for (const auto &[name, value] : counters) {
        os << "  " << name
           << std::string(width - name.size() + 2, ' ') << value
           << "\n";
    }
    for (const auto &[name, value] : gauges) {
        os << "  " << name
           << std::string(width - name.size() + 2, ' ') << value
           << "\n";
    }
    for (const HistogramSnapshot &h : histograms) {
        os << "  " << h.name << "  count=" << h.count
           << " sum=" << h.sum << " p50=" << h.percentile(50)
           << " p95=" << h.percentile(95)
           << " p99=" << h.percentile(99) << "\n";
    }
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name, std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(std::move(bounds));
    return *slot;
}

MetricsSnapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    for (const auto &[name, c] : counters_)
        snap.counters.emplace_back(name, c->value());
    for (const auto &[name, g] : gauges_)
        snap.gauges.emplace_back(name, g->value());
    for (const auto &[name, h] : histograms_) {
        HistogramSnapshot hs;
        hs.name = name;
        hs.bounds = h->bounds();
        for (std::size_t i = 0; i < h->numBuckets(); ++i)
            hs.counts.push_back(h->bucketCount(i));
        hs.count = h->count();
        hs.sum = h->sum();
        snap.histograms.push_back(std::move(hs));
    }
    return snap;
}

std::int64_t
nowUs()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

} // namespace ldx::obs
