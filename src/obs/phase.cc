#include "obs/phase.h"

#include "obs/registry.h"
#include "support/diag.h"

namespace ldx::obs {

PhaseTimer::PhaseTimer(TraceSink *sink, int lane)
    : sink_(sink), lane_(lane)
{}

void
PhaseTimer::begin(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stack_.push_back({name, nowUs(), std::chrono::steady_clock::now()});
}

double
PhaseTimer::end()
{
    PhaseSample sample;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        checkInvariant(!stack_.empty(),
                       "PhaseTimer::end without a begin");
        OpenPhase open = std::move(stack_.back());
        stack_.pop_back();
        sample.name = std::move(open.name);
        sample.depth = static_cast<int>(stack_.size());
        sample.startUs = open.startUs;
        sample.seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - open.t0)
                             .count();
        samples_.push_back(sample);
    }
    if (sink_) {
        TraceRecord rec;
        rec.name = sample.name;
        rec.phase = 'X';
        rec.lane = lane_;
        rec.tid = sample.depth;
        rec.tsUs = sample.startUs;
        rec.durUs = static_cast<std::int64_t>(sample.seconds * 1e6);
        sink_->emit(rec);
    }
    return sample.seconds;
}

void
PhaseTimer::record(const std::string &name, int depth,
                   std::int64_t start_us, double seconds)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        samples_.push_back({name, depth, start_us, seconds});
    }
    if (sink_) {
        TraceRecord rec;
        rec.name = name;
        rec.phase = 'X';
        rec.lane = lane_;
        rec.tid = depth;
        rec.tsUs = start_us;
        rec.durUs = static_cast<std::int64_t>(seconds * 1e6);
        sink_->emit(rec);
    }
}

std::vector<PhaseSample>
PhaseTimer::samples() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_;
}

double
PhaseTimer::total(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    double sum = 0.0;
    for (const PhaseSample &s : samples_) {
        if (s.name == name)
            sum += s.seconds;
    }
    return sum;
}

} // namespace ldx::obs
