#include "obs/trace.h"

#include "obs/json.h"
#include "obs/registry.h"

namespace ldx::obs {

namespace {

/** Shared argument rendering: `"k1":1,"k2":"v"` (no braces). */
std::string
renderArgs(const TraceRecord &rec)
{
    std::string out;
    for (const auto &[k, v] : rec.numArgs) {
        if (!out.empty())
            out += ',';
        appendJsonString(out, k);
        out += ':';
        out += jsonNumber(v);
    }
    for (const auto &[k, v] : rec.strArgs) {
        if (!out.empty())
            out += ',';
        appendJsonString(out, k);
        out += ':';
        appendJsonString(out, v);
    }
    return out;
}

std::int64_t
stampOf(const TraceRecord &rec)
{
    return rec.tsUs >= 0 ? rec.tsUs : nowUs();
}

} // namespace

// ---------------------------------------------------------------- JSONL

JsonlTraceSink::JsonlTraceSink(std::ostream &os, std::uint64_t cap)
    : os_(os), cap_(cap)
{}

void
JsonlTraceSink::emit(const TraceRecord &rec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (emitted_ >= cap_)
        return;
    ++emitted_;
    std::string line = "{\"ts_us\":" + jsonNumber(stampOf(rec));
    line += ",\"name\":";
    appendJsonString(line, rec.name);
    line += ",\"ph\":\"";
    line += rec.phase;
    line += "\",\"lane\":" + jsonNumber(
        static_cast<std::int64_t>(rec.lane));
    line += ",\"tid\":" + jsonNumber(static_cast<std::int64_t>(rec.tid));
    if (rec.phase == 'X')
        line += ",\"dur_us\":" + jsonNumber(rec.durUs);
    std::string args = renderArgs(rec);
    if (!args.empty())
        line += ',' + args;
    line += "}\n";
    os_ << line;
}

void
JsonlTraceSink::setLaneName(int lane, const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string line = "{\"ts_us\":" + jsonNumber(nowUs());
    line += ",\"name\":\"lane\",\"ph\":\"M\",\"lane\":" +
            jsonNumber(static_cast<std::int64_t>(lane));
    line += ",\"tid\":0,\"label\":";
    appendJsonString(line, name);
    line += "}\n";
    os_ << line;
}

void
JsonlTraceSink::flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    os_.flush();
}

// --------------------------------------------------------------- Chrome

ChromeTraceSink::ChromeTraceSink(std::ostream &os, std::uint64_t cap)
    : os_(os), cap_(cap)
{
    os_ << "{\"traceEvents\":[";
}

ChromeTraceSink::~ChromeTraceSink()
{
    flush();
}

void
ChromeTraceSink::writeEvent(const std::string &body)
{
    if (closed_)
        return;
    if (any_)
        os_ << ",\n";
    any_ = true;
    os_ << body;
}

void
ChromeTraceSink::emit(const TraceRecord &rec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (emitted_ >= cap_)
        return;
    ++emitted_;
    std::string ev = "{\"name\":";
    appendJsonString(ev, rec.name);
    ev += ",\"ph\":\"";
    ev += rec.phase;
    ev += "\"";
    if (rec.phase == 'i')
        ev += ",\"s\":\"t\""; // thread-scoped instant marker
    ev += ",\"pid\":" + jsonNumber(static_cast<std::int64_t>(rec.lane));
    ev += ",\"tid\":" + jsonNumber(static_cast<std::int64_t>(rec.tid));
    ev += ",\"ts\":" + jsonNumber(stampOf(rec));
    if (rec.phase == 'X')
        ev += ",\"dur\":" + jsonNumber(rec.durUs);
    std::string args = renderArgs(rec);
    if (!args.empty())
        ev += ",\"args\":{" + args + "}";
    ev += '}';
    writeEvent(ev);
}

void
ChromeTraceSink::setLaneName(int lane, const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string ev = "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
                     jsonNumber(static_cast<std::int64_t>(lane));
    ev += ",\"tid\":0,\"args\":{\"name\":";
    appendJsonString(ev, name);
    ev += "}}";
    writeEvent(ev);
}

void
ChromeTraceSink::flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!closed_) {
        os_ << "\n]}\n";
        closed_ = true;
    }
    os_.flush();
}

std::unique_ptr<TraceSink>
makeTraceSink(const std::string &format, std::ostream &os)
{
    if (format == "jsonl")
        return std::make_unique<JsonlTraceSink>(os);
    if (format == "chrome")
        return std::make_unique<ChromeTraceSink>(os);
    return nullptr;
}

} // namespace ldx::obs
