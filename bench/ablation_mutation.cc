/**
 * @file
 * Mutation-strategy ablation (§8.3 "Input Mutation"): re-run every
 * leaking mutation case under the four strategies and count correct
 * detections. The paper observes that no strategy supersedes
 * off-by-one (which provably flips every one-to-one mapping); zeroing
 * or bit-flips can coincide with the original value or collapse into
 * the same equivalence class.
 */
#include <iostream>

#include "bench_util.h"
#include "ldx/mutation.h"
#include "support/table.h"

using namespace ldx;

int
main()
{
    std::cout << "== Ablation: mutation strategies ==\n\n";
    const core::MutationStrategy strategies[] = {
        core::MutationStrategy::OffByOne,
        core::MutationStrategy::Zero,
        core::MutationStrategy::BitFlip,
        core::MutationStrategy::Random,
    };

    TextTable table({"Strategy", "detected", "cases", "rate"});
    for (core::MutationStrategy strategy : strategies) {
        int detected = 0, cases = 0;
        for (const workloads::Workload &w : workloads::allWorkloads()) {
            for (const workloads::MutationCase &mc : w.mutationCases) {
                if (!mc.expectLeak)
                    continue;
                core::EngineConfig cfg;
                cfg.sinks = w.sinks;
                cfg.sources = mc.sources;
                cfg.strategy = strategy;
                cfg.wallClockCap = 60.0;
                core::DualEngine engine(
                    workloads::workloadModule(w, true),
                    w.world(w.defaultScale), cfg);
                auto res = engine.run();
                ++cases;
                if (res.causality())
                    ++detected;
            }
        }
        table.addRow({core::mutationStrategyName(strategy),
                      std::to_string(detected), std::to_string(cases),
                      formatPercent(cases ? static_cast<double>(detected) /
                                                cases
                                          : 0.0)});
    }
    table.print(std::cout);
    std::cout << "\n(Paper: other strategies do not supersede "
                 "off-by-one.)\n";
    return 0;
}
