/**
 * @file
 * Figure 6 — "Normalized overhead of LDX": per program, the runtime of
 * dual execution (master and slave concurrently on two OS threads)
 * normalized to the native uninstrumented run, in two configurations:
 *
 *  - "same input": no mutation, master and slave perfectly aligned —
 *    the cost of counter maintenance and syscall outcome sharing;
 *  - "mutated": sources mutated, so the runs take different paths and
 *    the engine pays for synchronization and realignment.
 *
 * The paper reports geometric means of 4.45% / 4.7% and arithmetic
 * means of 5.7% / 6.08%; absolute values here depend on the host, but
 * the *shape* must hold: single-digit-percent average overhead, and
 * mutated inputs costing barely more than aligned runs because
 * misaligned syscalls execute independently and concurrently.
 *
 * Interactive (firefox, lynx) and trivial-runtime (sysstat) programs
 * are excluded, as in the paper; so is the vulnerable set (their runs
 * end at the exploit).
 */
#include <iostream>
#include <thread>

#include "bench_util.h"
#include "support/stats.h"
#include "support/table.h"

using namespace ldx;

int
main()
{
    // The paper's metric assumes the master and the slave run on two
    // separate CPUs, so the baseline for "overhead" is one native
    // execution. On a single-CPU host the two executions serialize,
    // which costs an unavoidable 2x; the coupling overhead is then
    // what dual execution costs *beyond* running the program twice.
    unsigned cpus = std::max(1u, std::thread::hardware_concurrency());
    bool parallel = cpus >= 2;
    double baseline_factor = parallel ? 1.0 : 2.0;
    std::cout << "== Figure 6: normalized overhead of LDX ==\n";
    std::cout << "host CPUs: " << cpus
              << (parallel
                      ? " (master+slave on separate threads; baseline ="
                        " 1x native)"
                      : " (single CPU: executions serialize; baseline ="
                        " 2x native)")
              << "\n\n";

    std::vector<std::string> excluded = {"firefox", "lynx", "sysstat",
                                         "gif2png", "mp3info",
                                         "prozilla", "yopsweb",
                                         "ngircd", "gzip-alloc"};

    TextTable table({"Program", "native(ms)", "ldx same-in",
                     "ldx mutated", "ovh same", "ovh mutated",
                     "ovh rec-off"});
    RunningStats same_ratio, mut_ratio, mut_norec_ratio;
    double driver_yields = 0, driver_backoff_ns = 0,
           mutex_acquisitions = 0;
    std::string rows_json;

    for (const workloads::Workload &w : workloads::allWorkloads()) {
        bool skip = false;
        for (const auto &e : excluded)
            skip |= w.name == e;
        if (skip)
            continue;

        // Warm the module caches outside the timed region, then pick
        // a scale giving a non-trivial native runtime.
        workloads::workloadModule(w, false);
        workloads::workloadModule(w, true);
        int scale = w.defaultScale * 4;
        double native =
            bench::timeSeconds([&] { bench::runNative(w, scale); });
        while (native < 0.02 && scale < 256) {
            scale *= 2;
            native =
                bench::timeSeconds([&] { bench::runNative(w, scale); });
        }

        // Untimed dual warm-up: the first dual run per program pays
        // one-time costs (page faults, allocator growth) that would
        // otherwise land entirely on the first timed column and skew
        // the three-way comparison below.
        bench::runDual(w, scale, w.sources, parallel);

        double same = bench::timeSeconds(
            [&] { bench::runDual(w, scale, {}, parallel); });
        core::DualResult mut_res;
        double mutated = bench::timeSeconds([&] {
            mut_res = bench::runDual(w, scale, w.sources, parallel);
        });
        // Same configuration with the flight recorder off: the delta
        // between this column and "ovh mutated" is the recorder's
        // whole cost (the default-on setting must be within noise).
        double mutated_norec = bench::timeSeconds([&] {
            bench::runDual(w, scale, w.sources, parallel, 0,
                           /*recorder=*/false);
        });
        // Threaded-driver backoff accounting: how the stalled side
        // waited (yields + timed sleeps) instead of holding the
        // channel mutex; mutex acquisitions stay low because blocked
        // re-polls are answered by the lock-free position mirrors.
        double yields = mut_res.metrics.counterOr("driver.yields");
        double backoff_ns =
            mut_res.metrics.counterOr("driver.backoff_ns");
        double mutex_acq =
            mut_res.metrics.counterOr("chan.mutex_acquisitions");
        driver_yields += yields;
        driver_backoff_ns += backoff_ns;
        mutex_acquisitions += mutex_acq;

        double r_same = same / (native * baseline_factor);
        double r_mut = mutated / (native * baseline_factor);
        double r_mut_norec =
            mutated_norec / (native * baseline_factor);
        same_ratio.add(r_same);
        mut_ratio.add(r_mut);
        mut_norec_ratio.add(r_mut_norec);

        table.addRow({w.name, formatDouble(native * 1e3, 2),
                      formatDouble(same * 1e3, 2),
                      formatDouble(mutated * 1e3, 2),
                      formatPercent(r_same - 1.0),
                      formatPercent(r_mut - 1.0),
                      formatPercent(r_mut_norec - 1.0)});

        if (!rows_json.empty())
            rows_json += ',';
        rows_json += "{\"name\":" + obs::jsonString(w.name);
        rows_json += ",\"native_ms\":" + obs::jsonNumber(native * 1e3);
        rows_json += ",\"same_ms\":" + obs::jsonNumber(same * 1e3);
        rows_json += ",\"mutated_ms\":" + obs::jsonNumber(mutated * 1e3);
        rows_json += ",\"ratio_same\":" + obs::jsonNumber(r_same);
        rows_json += ",\"ratio_mutated\":" + obs::jsonNumber(r_mut);
        rows_json += ",\"mutated_norec_ms\":" +
                     obs::jsonNumber(mutated_norec * 1e3);
        rows_json += ",\"ratio_mutated_norec\":" +
                     obs::jsonNumber(r_mut_norec);
        rows_json += ",\"driver_yields\":" + obs::jsonNumber(yields);
        rows_json +=
            ",\"driver_backoff_ns\":" + obs::jsonNumber(backoff_ns);
        rows_json +=
            ",\"mutex_acquisitions\":" + obs::jsonNumber(mutex_acq);
        rows_json += '}';
    }

    table.print(std::cout);
    std::cout << "\nGeomean overhead  same-input: "
              << formatPercent(same_ratio.geomean() - 1.0)
              << "   mutated: "
              << formatPercent(mut_ratio.geomean() - 1.0) << "\n";
    std::cout << "Arithmetic mean   same-input: "
              << formatPercent(same_ratio.mean() - 1.0)
              << "   mutated: "
              << formatPercent(mut_ratio.mean() - 1.0) << "\n";
    std::cout << "Overhead p50/p95/p99  same-input: "
              << formatPercent(same_ratio.p50() - 1.0) << " / "
              << formatPercent(same_ratio.p95() - 1.0) << " / "
              << formatPercent(same_ratio.p99() - 1.0)
              << "   mutated: "
              << formatPercent(mut_ratio.p50() - 1.0) << " / "
              << formatPercent(mut_ratio.p95() - 1.0) << " / "
              << formatPercent(mut_ratio.p99() - 1.0) << "\n";
    std::cout << "(Paper: geomean 4.45% / 4.7%, arith 5.7% / 6.08%.)\n";
    std::cout << "Flight recorder (mutated runs): on "
              << formatPercent(mut_ratio.geomean() - 1.0) << " vs off "
              << formatPercent(mut_norec_ratio.geomean() - 1.0)
              << " geomean overhead\n";
    std::cout << "Driver backoff (mutated runs, all programs): "
              << formatDouble(driver_yields, 0) << " yields, "
              << formatDouble(driver_backoff_ns / 1e6, 2)
              << " ms slept, "
              << formatDouble(mutex_acquisitions, 0)
              << " channel mutex acquisitions\n";

    std::string blob = "{\"bench\":\"fig6_overhead\"";
    blob += ",\"cpus\":" + std::to_string(cpus);
    blob += ",\"baseline_factor\":" + obs::jsonNumber(baseline_factor);
    blob += ",\"programs\":[" + rows_json + ']';
    blob += ",\"ratio_same\":" + bench::statsJson(same_ratio);
    blob += ",\"ratio_mutated\":" + bench::statsJson(mut_ratio);
    blob += ",\"ratio_mutated_norec\":" +
            bench::statsJson(mut_norec_ratio);
    blob += ",\"driver_yields\":" + obs::jsonNumber(driver_yields);
    blob +=
        ",\"driver_backoff_ns\":" + obs::jsonNumber(driver_backoff_ns);
    blob += ",\"mutex_acquisitions\":" +
            obs::jsonNumber(mutex_acquisitions);
    blob += '}';
    bench::writeBenchBlob("fig6_overhead", blob);
    return 0;
}
