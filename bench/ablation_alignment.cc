/**
 * @file
 * Alignment-scheme ablation (§8.1 / §9): wall time of
 *
 *   native            — one uninstrumented execution,
 *   counter-native    — one instrumented execution (counter upkeep),
 *   LDX               — counter-coupled dual execution,
 *   DualEx-indexing   — instruction-lockstep dual execution with
 *                       execution-index maintenance and monitor
 *                       comparison (Kim et al. 2015 model).
 *
 * Expected shape: LDX within a few percent of native; the indexing
 * baseline orders of magnitude slower (the paper reports LDX as three
 * orders of magnitude faster than DualEx).
 */
#include <iostream>

#include "bench_util.h"
#include "support/stats.h"
#include "support/table.h"
#include "taint/indexing.h"

using namespace ldx;

int
main()
{
    std::cout << "== Ablation: alignment scheme cost "
                 "(counter vs execution indexing) ==\n\n";
    std::vector<std::string> names = {"401.bzip2", "429.mcf",
                                      "456.hmmer", "462.libquantum",
                                      "473.astar"};
    TextTable table({"Program", "native(ms)", "counter(ms)", "LDX(ms)",
                     "indexing(ms)", "LDX ovh (vs 2x)", "indexing slowdown"});
    RunningStats ldx_ovh, idx_slow;

    for (const std::string &name : names) {
        const workloads::Workload *w = workloads::findWorkload(name);
        int scale = w->defaultScale * 4;
        workloads::workloadModule(*w, false);
        workloads::workloadModule(*w, true);

        double native =
            bench::timeSeconds([&] { bench::runNative(*w, scale); });
        double counter = bench::timeSeconds(
            [&] { bench::runInstrumentedNative(*w, scale); });
        double ldx_time = bench::timeSeconds(
            [&] { bench::runDual(*w, scale, {}, /*threaded=*/true); });
        // The indexing baseline pays per-instruction monitor IPC, so
        // run it (and its native reference) at scale 1.
        double native1 =
            bench::timeSeconds([&] { bench::runNative(*w, 1); });
        double indexing = bench::timeSeconds(
            [&] {
                taint::runIndexedDualExecution(
                    workloads::workloadModule(*w, false), w->world(1));
            },
            1);

        ldx_ovh.add(ldx_time / (2.0 * native));
        idx_slow.add(indexing / native1);
        table.addRow({name, formatDouble(native * 1e3, 2),
                      formatDouble(counter * 1e3, 2),
                      formatDouble(ldx_time * 1e3, 2),
                      formatDouble(indexing * 1e3, 2) + " (scale 1)",
                      formatPercent(ldx_time / (2.0 * native) - 1.0),
                      formatDouble(indexing / native1, 1) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nGeomean: LDX overhead "
              << formatPercent(ldx_ovh.geomean() - 1.0)
              << ", indexing slowdown "
              << formatDouble(idx_slow.geomean(), 1) << "x\n";
    std::cout << "(Paper: LDX ~6% overhead; DualEx-style indexing three "
                 "orders of magnitude.)\n";
    return 0;
}
