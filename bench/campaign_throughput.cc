/**
 * @file
 * Campaign throughput: batch causality inference scaling with worker
 * count (docs/EXPERIMENTS.md "Campaign throughput").
 *
 * For each benchmark workload the full campaign (enumerate -> plan ->
 * dual-execute every (source, policy) query -> aggregate) runs cold at
 * --jobs 1/2/4/8, reporting queries/sec and per-query latency
 * percentiles, then once more against a warm in-memory cache to
 * report the hit rate and the warm wall time, and finally a
 * telemetry-off vs telemetry-on pair (exporter + trace + spans all
 * enabled) at --jobs 4 to measure the observability overhead — the
 * acceptance budget is <= 5%. Emits BENCH_campaign.json for CI
 * diffing.
 */
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/exporter.h"
#include "query/campaign.h"

using namespace ldx;

namespace {

struct JobsRun
{
    int jobs = 0;
    std::size_t queries = 0;
    double seconds = 0.0;
    double queriesPerSec = 0.0;
    RunningStats latency; ///< per-query seconds (executed only)
};

JobsRun
coldCampaign(const workloads::Workload &w, int jobs)
{
    query::CampaignConfig cfg;
    cfg.sinks = w.sinks;
    cfg.jobs = jobs;
    cfg.deadlineSeconds = 60.0;

    JobsRun run;
    run.jobs = jobs;
    query::CampaignResult res;
    run.seconds = bench::timeSeconds(
        [&] {
            res = query::runCampaign(workloads::workloadModule(w, true),
                                     w.world(w.defaultScale), cfg);
        },
        1);
    run.queries = res.queries.size();
    run.queriesPerSec =
        run.seconds > 0.0 ? res.queries.size() / run.seconds : 0.0;
    for (std::size_t i = 0; i < res.queries.size(); ++i)
        if (!res.fromCache[i] &&
            res.outcomes[i].status == query::RunStatus::Done)
            run.latency.add(res.outcomes[i].seconds);
    return run;
}

/** Telemetry-overhead pair: best-of-N seconds with telemetry off/on. */
struct TelemetryPair
{
    double offSeconds = 0.0;
    double onSeconds = 0.0;
};

/**
 * Measure one workload's cold --jobs 4 campaign with telemetry off vs
 * fully on (metrics registry, exporter sampling into throwaway files,
 * span-correlated tracing into an in-memory stream). The campaigns
 * finish in ~1 ms, so the off/on runs are *interleaved* and best-of-N
 * taken on each side — back-to-back blocks would fold CPU-frequency
 * drift into the delta and swamp the effect being measured.
 */
TelemetryPair
telemetryOverhead(const workloads::Workload &w)
{
    query::CampaignConfig off_cfg;
    off_cfg.sinks = w.sinks;
    off_cfg.jobs = 4;
    off_cfg.deadlineSeconds = 60.0;

    query::CampaignConfig on_cfg = off_cfg;
    obs::Registry reg;
    std::ostringstream trace_out;
    obs::JsonlTraceSink sink(trace_out);
    on_cfg.registry = &reg;
    on_cfg.traceSink = &sink;

    obs::ExporterConfig ecfg;
    ecfg.jsonlPath = std::string("bench-telemetry-") + w.name + ".jsonl";
    ecfg.promPath = std::string("bench-telemetry-") + w.name + ".prom";
    ecfg.intervalMs = 100;
    obs::Exporter exporter(reg, ecfg);
    exporter.start();

    TelemetryPair pair;
    pair.offSeconds = pair.onSeconds = 1e30;
    const int reps = 20;
    for (int r = 0; r < reps; ++r) {
        double off = bench::timeSeconds(
            [&] {
                query::runCampaign(workloads::workloadModule(w, true),
                                   w.world(w.defaultScale), off_cfg);
            },
            1);
        double on = bench::timeSeconds(
            [&] {
                query::runCampaign(workloads::workloadModule(w, true),
                                   w.world(w.defaultScale), on_cfg);
            },
            1);
        if (off < pair.offSeconds)
            pair.offSeconds = off;
        if (on < pair.onSeconds)
            pair.onSeconds = on;
    }
    exporter.stop();
    return pair;
}

/** Snapshot on/off pair: cold --jobs 4 campaigns, best-of-N each. */
struct SnapshotPair
{
    double offSeconds = 0.0;
    double onSeconds = 0.0;
    std::uint64_t prefixInstrsOff = 0; ///< dual prefix instrs executed
    std::uint64_t prefixInstrsOn = 0;
    std::uint64_t prefixRuns = 0;
    std::uint64_t forks = 0;
    std::uint64_t instrsSaved = 0;
};

/**
 * Measure snapshot/fork execution against the full-run path. Like the
 * telemetry pair, the off/on runs are interleaved and best-of-N taken
 * on each side. The prefix-instruction tallies come from the last
 * rep — they are deterministic, so any rep reports the same numbers.
 */
SnapshotPair
snapshotSpeedup(const workloads::Workload &w)
{
    query::CampaignConfig off_cfg;
    off_cfg.sinks = w.sinks;
    off_cfg.jobs = 4;
    off_cfg.deadlineSeconds = 60.0;
    query::CampaignConfig on_cfg = off_cfg;
    on_cfg.snapshot = true;

    SnapshotPair pair;
    pair.offSeconds = pair.onSeconds = 1e30;
    const int reps = 20;
    for (int r = 0; r < reps; ++r) {
        query::CampaignResult off_res, on_res;
        double off = bench::timeSeconds(
            [&] {
                off_res = query::runCampaign(
                    workloads::workloadModule(w, true),
                    w.world(w.defaultScale), off_cfg);
            },
            1);
        double on = bench::timeSeconds(
            [&] {
                on_res = query::runCampaign(
                    workloads::workloadModule(w, true),
                    w.world(w.defaultScale), on_cfg);
            },
            1);
        if (off < pair.offSeconds)
            pair.offSeconds = off;
        if (on < pair.onSeconds)
            pair.onSeconds = on;
        pair.prefixInstrsOff = off_res.prefixInstrs;
        pair.prefixInstrsOn = on_res.prefixInstrs;
        pair.prefixRuns = on_res.snapshotPrefixRuns;
        pair.forks = on_res.snapshotForks;
        pair.instrsSaved = on_res.snapshotInstrsSaved;
    }
    return pair;
}

} // namespace

int
main()
{
    const char *names[] = {"gif2png", "mp3info", "prozilla", "ngircd"};
    const int jobs_axis[] = {1, 2, 4, 8};

    std::string json = "{\"bench\":\"campaign\",\"workloads\":[";
    bool first_w = true;
    for (const char *name : names) {
        const workloads::Workload *w = workloads::findWorkload(name);
        if (!w) {
            std::cerr << "[bench] unknown workload " << name << "\n";
            return 2;
        }
        if (!first_w)
            json += ',';
        first_w = false;
        json += "{\"workload\":" + obs::jsonString(w->name);
        json += ",\"runs\":[";

        std::cout << w->name << ":\n";
        for (std::size_t j = 0; j < std::size(jobs_axis); ++j) {
            JobsRun run = coldCampaign(*w, jobs_axis[j]);
            std::cout << "  jobs " << run.jobs << ": " << run.queries
                      << " queries in " << run.seconds * 1e3 << " ms ("
                      << run.queriesPerSec << " q/s, p50 "
                      << run.latency.p50() * 1e3 << " ms, p95 "
                      << run.latency.p95() * 1e3 << " ms)\n";
            if (j)
                json += ',';
            json += "{\"jobs\":" + std::to_string(run.jobs);
            json += ",\"queries\":" + std::to_string(run.queries);
            json += ",\"seconds\":" + obs::jsonNumber(run.seconds);
            json += ",\"queries_per_sec\":" +
                    obs::jsonNumber(run.queriesPerSec);
            json += ",\"latency_seconds\":" +
                    bench::statsJson(run.latency);
            json += '}';
        }
        json += ']';

        // Warm pass: run the campaign twice against a per-workload
        // disk cache in the working directory and measure the second
        // (fully cached) run.
        query::CampaignConfig warm_cfg;
        warm_cfg.sinks = w->sinks;
        warm_cfg.jobs = 4;
        warm_cfg.deadlineSeconds = 60.0;
        warm_cfg.cacheDir =
            std::string("campaign-cache-") + w->name;
        query::runCampaign(workloads::workloadModule(*w, true),
                           w->world(w->defaultScale), warm_cfg);
        query::CampaignResult warm;
        double warm_seconds = bench::timeSeconds(
            [&] {
                warm = query::runCampaign(
                    workloads::workloadModule(*w, true),
                    w->world(w->defaultScale), warm_cfg);
            },
            1);
        double hit_rate =
            warm.queries.empty()
                ? 0.0
                : static_cast<double>(warm.cacheHits) /
                      static_cast<double>(warm.queries.size());
        std::cout << "  warm: " << warm.cacheHits << "/"
                  << warm.queries.size() << " cached ("
                  << warm.dualExecutions << " executed, "
                  << warm_seconds * 1e3 << " ms)\n";
        json += ",\"warm\":{\"cache_hit_rate\":" +
                obs::jsonNumber(hit_rate);
        json += ",\"dual_executions\":" +
                std::to_string(warm.dualExecutions);
        json += ",\"seconds\":" + obs::jsonNumber(warm_seconds) + "}";

        // Telemetry overhead: cold --jobs 4 with everything off vs
        // everything on (registry + exporter + span trace).
        TelemetryPair pair = telemetryOverhead(*w);
        double overhead = pair.offSeconds > 0.0
                              ? pair.onSeconds / pair.offSeconds - 1.0
                              : 0.0;
        std::cout << "  telemetry: off " << pair.offSeconds * 1e3
                  << " ms, on " << pair.onSeconds * 1e3 << " ms ("
                  << overhead * 100.0 << "% overhead)\n";
        json += ",\"telemetry\":{\"off_seconds\":" +
                obs::jsonNumber(pair.offSeconds);
        json += ",\"on_seconds\":" + obs::jsonNumber(pair.onSeconds);
        json += ",\"overhead\":" + obs::jsonNumber(overhead) + "}";

        // Snapshot/fork execution vs the full-run path: wall time and
        // dual prefix instructions executed (the S·P -> S + S·P
        // suffix claim; docs/CAMPAIGN.md "Snapshot/fork execution").
        SnapshotPair snap = snapshotSpeedup(*w);
        double instr_drop =
            snap.prefixInstrsOn > 0
                ? static_cast<double>(snap.prefixInstrsOff) /
                      static_cast<double>(snap.prefixInstrsOn)
                : 0.0;
        std::cout << "  snapshot: off " << snap.offSeconds * 1e3
                  << " ms, on " << snap.onSeconds * 1e3 << " ms; "
                  << "prefix instrs " << snap.prefixInstrsOff
                  << " -> " << snap.prefixInstrsOn << " ("
                  << instr_drop << "x, " << snap.prefixRuns
                  << " prefix runs, " << snap.forks << " forks)\n";
        json += ",\"snapshot\":{\"off_seconds\":" +
                obs::jsonNumber(snap.offSeconds);
        json += ",\"on_seconds\":" + obs::jsonNumber(snap.onSeconds);
        json += ",\"prefix_instrs_off\":" +
                std::to_string(snap.prefixInstrsOff);
        json += ",\"prefix_instrs_on\":" +
                std::to_string(snap.prefixInstrsOn);
        json += ",\"prefix_instr_drop\":" + obs::jsonNumber(instr_drop);
        json += ",\"prefix_runs\":" + std::to_string(snap.prefixRuns);
        json += ",\"forks\":" + std::to_string(snap.forks);
        json += ",\"instrs_saved\":" + std::to_string(snap.instrsSaved);
        json += '}';
        json += '}';
    }
    json += "]}";
    bench::writeBenchBlob("campaign", json);
    return 0;
}
