/**
 * @file
 * Campaign throughput: batch causality inference scaling with worker
 * count (docs/EXPERIMENTS.md "Campaign throughput").
 *
 * For each benchmark workload the full campaign (enumerate -> plan ->
 * dual-execute every (source, policy) query -> aggregate) runs cold at
 * --jobs 1/2/4/8, reporting queries/sec and per-query latency
 * percentiles, then once more against a warm in-memory cache to
 * report the hit rate and the warm wall time. Emits
 * BENCH_campaign.json for CI diffing.
 */
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "query/campaign.h"

using namespace ldx;

namespace {

struct JobsRun
{
    int jobs = 0;
    std::size_t queries = 0;
    double seconds = 0.0;
    double queriesPerSec = 0.0;
    RunningStats latency; ///< per-query seconds (executed only)
};

JobsRun
coldCampaign(const workloads::Workload &w, int jobs)
{
    query::CampaignConfig cfg;
    cfg.sinks = w.sinks;
    cfg.jobs = jobs;
    cfg.deadlineSeconds = 60.0;

    JobsRun run;
    run.jobs = jobs;
    query::CampaignResult res;
    run.seconds = bench::timeSeconds(
        [&] {
            res = query::runCampaign(workloads::workloadModule(w, true),
                                     w.world(w.defaultScale), cfg);
        },
        1);
    run.queries = res.queries.size();
    run.queriesPerSec =
        run.seconds > 0.0 ? res.queries.size() / run.seconds : 0.0;
    for (std::size_t i = 0; i < res.queries.size(); ++i)
        if (!res.fromCache[i] &&
            res.outcomes[i].status == query::RunStatus::Done)
            run.latency.add(res.outcomes[i].seconds);
    return run;
}

} // namespace

int
main()
{
    const char *names[] = {"gif2png", "mp3info", "prozilla", "ngircd"};
    const int jobs_axis[] = {1, 2, 4, 8};

    std::string json = "{\"bench\":\"campaign\",\"workloads\":[";
    bool first_w = true;
    for (const char *name : names) {
        const workloads::Workload *w = workloads::findWorkload(name);
        if (!w) {
            std::cerr << "[bench] unknown workload " << name << "\n";
            return 2;
        }
        if (!first_w)
            json += ',';
        first_w = false;
        json += "{\"workload\":" + obs::jsonString(w->name);
        json += ",\"runs\":[";

        std::cout << w->name << ":\n";
        for (std::size_t j = 0; j < std::size(jobs_axis); ++j) {
            JobsRun run = coldCampaign(*w, jobs_axis[j]);
            std::cout << "  jobs " << run.jobs << ": " << run.queries
                      << " queries in " << run.seconds * 1e3 << " ms ("
                      << run.queriesPerSec << " q/s, p50 "
                      << run.latency.p50() * 1e3 << " ms, p95 "
                      << run.latency.p95() * 1e3 << " ms)\n";
            if (j)
                json += ',';
            json += "{\"jobs\":" + std::to_string(run.jobs);
            json += ",\"queries\":" + std::to_string(run.queries);
            json += ",\"seconds\":" + obs::jsonNumber(run.seconds);
            json += ",\"queries_per_sec\":" +
                    obs::jsonNumber(run.queriesPerSec);
            json += ",\"latency_seconds\":" +
                    bench::statsJson(run.latency);
            json += '}';
        }
        json += ']';

        // Warm pass: run the campaign twice against a per-workload
        // disk cache in the working directory and measure the second
        // (fully cached) run.
        query::CampaignConfig warm_cfg;
        warm_cfg.sinks = w->sinks;
        warm_cfg.jobs = 4;
        warm_cfg.deadlineSeconds = 60.0;
        warm_cfg.cacheDir =
            std::string("campaign-cache-") + w->name;
        query::runCampaign(workloads::workloadModule(*w, true),
                           w->world(w->defaultScale), warm_cfg);
        query::CampaignResult warm;
        double warm_seconds = bench::timeSeconds(
            [&] {
                warm = query::runCampaign(
                    workloads::workloadModule(*w, true),
                    w->world(w->defaultScale), warm_cfg);
            },
            1);
        double hit_rate =
            warm.queries.empty()
                ? 0.0
                : static_cast<double>(warm.cacheHits) /
                      static_cast<double>(warm.queries.size());
        std::cout << "  warm: " << warm.cacheHits << "/"
                  << warm.queries.size() << " cached ("
                  << warm.dualExecutions << " executed, "
                  << warm_seconds * 1e3 << " ms)\n";
        json += ",\"warm\":{\"cache_hit_rate\":" +
                obs::jsonNumber(hit_rate);
        json += ",\"dual_executions\":" +
                std::to_string(warm.dualExecutions);
        json += ",\"seconds\":" + obs::jsonNumber(warm_seconds) + "}";
        json += '}';
    }
    json += "]}";
    bench::writeBenchBlob("campaign", json);
    return 0;
}
