/**
 * @file
 * Table 1 — "Benchmarks and Instrumentation": per program, the static
 * instrumentation footprint (inserted counter ops and their fraction,
 * instrumented loops, recursive functions, indirect call sites,
 * syscall sites, maximum static counter value) and the dynamic
 * counter characteristics of one run (average/max counter value at
 * syscalls, max counter-stack depth), plus the number of mutated
 * input sources.
 */
#include <iostream>

#include "bench_util.h"
#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "os/kernel.h"
#include "support/table.h"
#include "vm/machine.h"
#include "workloads/workloads.h"

using namespace ldx;

int
main()
{
    std::cout << "== Table 1: Benchmarks and Instrumentation ==\n\n";
    TextTable table({"Program", "Cat.", "LOC", "Inst.", "Inst.%",
                     "Loop", "Recur.", "FPTR", "Syscalls", "Max.Cnt",
                     "Dyn.Avg", "Dyn.Max", "StkDepth", "Mut.In"});

    for (const workloads::Workload &w : workloads::allWorkloads()) {
        auto module = lang::compileSource(w.source);
        instrument::CounterInstrumenter pass(*module);
        instrument::InstrumentStats st = pass.run();

        // Dynamic counter statistics from one instrumented run.
        os::Kernel kernel(w.world(w.defaultScale));
        vm::Machine machine(*module, kernel, {});
        machine.run();
        vm::MachineStats dyn = machine.stats();

        table.addRow({
            w.name,
            workloads::categoryName(w.category),
            std::to_string(bench::countLoc(w)),
            std::to_string(st.insertedOps),
            formatPercent(st.instrumentedRatio()),
            std::to_string(st.loops),
            std::to_string(st.recursiveFunctions),
            std::to_string(st.indirectCallSites),
            std::to_string(st.syscallSites),
            std::to_string(st.maxStaticCnt),
            formatDouble(dyn.avgCnt, 1),
            std::to_string(dyn.maxCnt),
            std::to_string(dyn.maxCntDepth),
            std::to_string(w.sources.size()),
        });
    }
    table.print(std::cout);

    std::cout << "\nColumns mirror the paper's Table 1: 'Inst.' is the\n"
                 "number of inserted counter operations (Inst.% their\n"
                 "fraction of program instructions), 'Max.Cnt' the\n"
                 "largest static counter value (FCNT of main), and the\n"
                 "dynamic columns come from one instrumented run.\n";
    return 0;
}
