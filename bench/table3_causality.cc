/**
 * @file
 * Table 3 — "Effectiveness of causality inference": per program, the
 * number of tainted sinks reported by the TaintGrind model, the
 * LIBDFT model, and LDX, over the total sink events of the run.
 *
 * Expected shape (paper): LDX >= TaintGrind >= LIBDFT everywhere —
 * data dependences are strong causalities (so LDX subsumes both), the
 * baselines miss control-dependence-induced causality, and LIBDFT
 * additionally drops taint at unmodeled library routines (its numbers
 * are a subset of TaintGrind's). The paper measured the baselines at
 * 31.47% (TaintGrind) and 20% (LIBDFT) of LDX's detections.
 */
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "support/table.h"
#include "taint/tracker.h"

using namespace ldx;

namespace {

taint::TaintRunResult
baselineRun(const workloads::Workload &w, taint::TaintPolicy policy)
{
    taint::TaintRunOptions opts;
    opts.policy = policy;
    opts.sources = w.sources;
    core::SinkConfig sinks = w.sinks;
    opts.sinkChannel = [sinks](const std::string &channel) {
        return sinks.matchesChannel(channel);
    };
    opts.retTokenSinks = w.sinks.retTokens;
    opts.allocSizeSinks = w.sinks.allocSizes;
    return taint::runTaintAnalysis(workloads::workloadModule(w, false),
                                   w.world(w.defaultScale), opts);
}

} // namespace

int
main()
{
    std::cout << "== Table 3: tainted sinks — TaintGrind / LIBDFT / "
                 "LDX / total ==\n\n";
    TextTable table({"Program", "TaintGrind", "LIBDFT", "LDX",
                     "Total sinks"});

    std::uint64_t sum_tg = 0, sum_ld = 0, sum_ldx = 0;
    for (const workloads::Workload &w : workloads::allWorkloads()) {
        auto tg = baselineRun(w, taint::TaintPolicy::taintgrind());
        auto ld = baselineRun(w, taint::TaintPolicy::libdft());

        // The paper mutates several inputs per program (Table 1's
        // "Mutated inputs" column reaches 54); we run the field-level
        // and the whole-value off-by-one mutations and count the
        // distinct sinks flagged by any of them.
        std::size_t ldx_count = 0;
        for (int whole = 0; whole < 2; ++whole) {
            std::vector<core::SourceSpec> sources;
            for (const core::SourceSpec &src : w.sources)
                sources.push_back(whole ? src.wholeValue() : src);
            auto res = bench::runDual(w, w.defaultScale, sources,
                                      /*threaded=*/false);
            // Count dynamic sink events (termination divergence is a
            // side signal, not a sink); report the strongest mutation.
            std::size_t events = 0;
            for (const core::Finding &f : res.findings) {
                if (f.kind != core::CauseKind::TerminationDiff)
                    ++events;
            }
            ldx_count = std::max(ldx_count, events);
        }

        sum_tg += tg.taintedSinks.size();
        sum_ld += ld.taintedSinks.size();
        sum_ldx += ldx_count;

        table.addRow({
            w.name,
            std::to_string(tg.taintedSinks.size()),
            std::to_string(ld.taintedSinks.size()),
            std::to_string(ldx_count),
            std::to_string(tg.totalSinks),
        });
    }
    table.print(std::cout);

    auto pct = [&](std::uint64_t v) {
        return sum_ldx ? formatPercent(static_cast<double>(v) /
                                       static_cast<double>(sum_ldx))
                       : std::string("n/a");
    };
    std::cout << "\nTotals: TaintGrind=" << sum_tg << " ("
              << pct(sum_tg) << " of LDX)  LIBDFT=" << sum_ld << " ("
              << pct(sum_ld) << " of LDX)  LDX=" << sum_ldx << "\n";
    std::cout << "(Paper: TaintGrind 31.47% and LIBDFT 20% of LDX's "
                 "tainted sinks;\n LDX reports no false positives — "
                 "every finding is a one-to-one mapping.)\n";
    return 0;
}
