/**
 * @file
 * Table 4 — "Effectiveness of concurrent programs": each threaded
 * program is dual-executed 100 times with its input mutation and a
 * different scheduler-jitter seed per run (modeling real scheduling
 * nondeterminism). Reported: min / max / sample stddev of the number
 * of syscall differences and of the number of tainted sinks.
 *
 * Expected shape (paper): syscall diffs vary across runs (low-level
 * races move the divergence points) but tainted-sink counts are
 * stable — except for x264, whose bits-per-tick statistic, and axel,
 * whose per-run connection behaviour, wiggle slightly.
 */
#include <iostream>

#include "bench_util.h"
#include "support/stats.h"
#include "support/table.h"

using namespace ldx;

int
main()
{
    constexpr int kRuns = 100;
    std::cout << "== Table 4: concurrency effectiveness (" << kRuns
              << " dual executions per program) ==\n\n";
    TextTable table({"Program", "diffs min/max/stddev",
                     "diffs p50/p95/p99",
                     "tainted sinks min/max/stddev",
                     "sinks p50/p95/p99"});
    std::string rows_json;

    for (const workloads::Workload *w :
         workloads::workloadsIn(workloads::Category::Concurrent)) {
        RunningStats diffs, sinks;
        for (int run = 0; run < kRuns; ++run) {
            auto res = bench::runDual(
                *w, w->defaultScale, w->sources, /*threaded=*/false,
                /*sched_delta=*/static_cast<std::uint64_t>(run + 1));
            diffs.add(static_cast<double>(res.syscallDiffs));
            sinks.add(static_cast<double>(res.taintedSinkCount()));
        }
        auto fmt = [](const RunningStats &s) {
            return formatDouble(s.min(), 0) + " / " +
                   formatDouble(s.max(), 0) + " / " +
                   formatDouble(s.stddev(), 2);
        };
        auto pct = [](const RunningStats &s) {
            return formatDouble(s.p50(), 0) + " / " +
                   formatDouble(s.p95(), 0) + " / " +
                   formatDouble(s.p99(), 0);
        };
        table.addRow({w->name, fmt(diffs), pct(diffs), fmt(sinks),
                      pct(sinks)});

        if (!rows_json.empty())
            rows_json += ',';
        rows_json += "{\"name\":" + obs::jsonString(w->name);
        rows_json += ",\"syscall_diffs\":" + bench::statsJson(diffs);
        rows_json += ",\"tainted_sinks\":" + bench::statsJson(sinks);
        rows_json += '}';
    }
    table.print(std::cout);
    bench::writeBenchBlob(
        "table4_concurrency",
        "{\"bench\":\"table4_concurrency\",\"runs\":" +
            std::to_string(kRuns) + ",\"programs\":[" + rows_json +
            "]}");
    std::cout << "\n(Paper: tainted sinks rarely change across runs "
                 "while syscall diffs do;\n x264 and axel show small "
                 "tainted-sink variation from racy statistics and\n "
                 "per-run connections.)\n";
    return 0;
}
