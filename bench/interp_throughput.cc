/**
 * @file
 * Interpreter throughput: retired instructions per second on the
 * legacy per-step dispatch path vs the predecoded fast path, for the
 * single-VM instrumented run and for full dual execution under both
 * drivers. The instruction counts themselves must not move — only the
 * wall clock does — so each row also cross-checks that legacy and
 * fast retire the same number of instructions.
 *
 * Emits BENCH_interp.json for run-over-run diffing.
 */
#include <iostream>

#include "bench_util.h"
#include "support/table.h"

using namespace ldx;

namespace {

struct Sample
{
    double seconds = 0.0;
    std::uint64_t instructions = 0;
    double yields = 0.0;
    double backoffNs = 0.0;

    double
    minstrPerSec() const
    {
        return seconds > 0.0
                   ? static_cast<double>(instructions) / seconds / 1e6
                   : 0.0;
    }
};

/** Single-VM instrumented run on one dispatch path. */
Sample
runSingle(const workloads::Workload &w, int scale, bool predecode)
{
    const ir::Module &m = workloads::workloadModule(w, true);
    Sample s;
    s.seconds = bench::timeSeconds([&] {
        os::Kernel kernel(w.world(scale));
        vm::MachineConfig cfg;
        cfg.predecode = predecode;
        vm::Machine machine(m, kernel, cfg);
        machine.run();
        s.instructions = machine.stats().instructions;
    });
    return s;
}

/** Dual run (both sides on one dispatch path), counting both VMs. */
Sample
runDualTimed(const workloads::Workload &w, int scale, bool predecode,
             bool threaded, bool recorder = true)
{
    Sample s;
    s.seconds = bench::timeSeconds([&] {
        core::EngineConfig cfg;
        cfg.sinks = w.sinks;
        cfg.threaded = threaded;
        cfg.wallClockCap = 60.0;
        cfg.vmConfig.predecode = predecode;
        cfg.flightRecorder = recorder;
        core::DualEngine engine(workloads::workloadModule(w, true),
                                w.world(scale), cfg);
        core::DualResult res = engine.run();
        s.instructions = res.masterStats.instructions +
                         res.slaveStats.instructions;
        s.yields = res.metrics.counterOr("driver.yields");
        s.backoffNs = res.metrics.counterOr("driver.backoff_ns");
    });
    return s;
}

std::string
sampleJson(const Sample &s)
{
    std::string out = "{\"seconds\":" + obs::jsonNumber(s.seconds);
    out += ",\"instructions\":" + std::to_string(s.instructions);
    out += ",\"minstr_per_sec\":" + obs::jsonNumber(s.minstrPerSec());
    out += '}';
    return out;
}

} // namespace

int
main()
{
    std::cout << "== Interpreter throughput: legacy vs predecoded ==\n\n";

    std::vector<std::string> programs = {"401.bzip2", "456.hmmer",
                                         "462.libquantum", "429.mcf"};

    TextTable table({"Program", "Minstr", "legacy Mi/s", "fast Mi/s",
                     "speedup", "dual-lk x", "dual-thr x", "rec ovh"});
    RunningStats speedups, recorder_overheads;
    std::string rows_json;

    for (const std::string &name : programs) {
        const workloads::Workload *w = workloads::findWorkload(name);
        if (!w) {
            std::cerr << "[bench] unknown workload " << name << "\n";
            continue;
        }
        workloads::workloadModule(*w, true); // warm the module cache

        // Grow the scale until the legacy run is long enough to time.
        int scale = w->defaultScale * 4;
        Sample legacy = runSingle(*w, scale, false);
        while (legacy.seconds < 0.05 && scale < 256) {
            scale *= 2;
            legacy = runSingle(*w, scale, false);
        }
        Sample fast = runSingle(*w, scale, true);
        if (legacy.instructions != fast.instructions) {
            std::cerr << "[bench] MISMATCH " << name
                      << ": legacy retired " << legacy.instructions
                      << " instructions, fast " << fast.instructions
                      << " — dispatch paths diverged\n";
            return 1;
        }

        // The dual rows run with the flight recorder on (the engine
        // default); the rec-off row isolates its cost, which must be
        // within noise of free.
        Sample dl_legacy = runDualTimed(*w, scale, false, false);
        Sample dl_fast = runDualTimed(*w, scale, true, false);
        Sample dl_norec =
            runDualTimed(*w, scale, true, false, /*recorder=*/false);
        Sample dt_legacy = runDualTimed(*w, scale, false, true);
        Sample dt_fast = runDualTimed(*w, scale, true, true);

        double speedup = fast.minstrPerSec() / legacy.minstrPerSec();
        double dl_speedup = dl_legacy.seconds / dl_fast.seconds;
        double dt_speedup = dt_legacy.seconds / dt_fast.seconds;
        double rec_overhead = dl_norec.seconds > 0.0
                                  ? dl_fast.seconds / dl_norec.seconds
                                  : 1.0;
        speedups.add(speedup);
        recorder_overheads.add(rec_overhead);

        table.addRow(
            {name,
             formatDouble(static_cast<double>(legacy.instructions) /
                              1e6,
                          1),
             formatDouble(legacy.minstrPerSec(), 1),
             formatDouble(fast.minstrPerSec(), 1),
             formatDouble(speedup, 2) + "x",
             formatDouble(dl_speedup, 2) + "x",
             formatDouble(dt_speedup, 2) + "x",
             formatDouble(rec_overhead, 3) + "x"});

        if (!rows_json.empty())
            rows_json += ',';
        rows_json += "{\"name\":" + obs::jsonString(name);
        rows_json += ",\"scale\":" + std::to_string(scale);
        rows_json += ",\"single_legacy\":" + sampleJson(legacy);
        rows_json += ",\"single_fast\":" + sampleJson(fast);
        rows_json += ",\"dual_lockstep_legacy\":" + sampleJson(dl_legacy);
        rows_json += ",\"dual_lockstep_fast\":" + sampleJson(dl_fast);
        rows_json +=
            ",\"dual_lockstep_fast_norec\":" + sampleJson(dl_norec);
        rows_json +=
            ",\"recorder_overhead\":" + obs::jsonNumber(rec_overhead);
        rows_json += ",\"dual_threaded_legacy\":" + sampleJson(dt_legacy);
        rows_json += ",\"dual_threaded_fast\":" + sampleJson(dt_fast);
        rows_json += ",\"speedup\":" + obs::jsonNumber(speedup);
        rows_json +=
            ",\"dual_threaded_yields\":" + obs::jsonNumber(dt_fast.yields);
        rows_json += ",\"dual_threaded_backoff_ns\":" +
                     obs::jsonNumber(dt_fast.backoffNs);
        rows_json += '}';
    }

    table.print(std::cout);
    std::cout << "\nGeomean single-VM speedup: "
              << formatDouble(speedups.geomean(), 2) << "x\n";
    std::cout << "Geomean flight-recorder overhead (dual lockstep, "
                 "on/off): "
              << formatDouble(recorder_overheads.geomean(), 3)
              << "x\n";

    std::string blob = "{\"bench\":\"interp_throughput\"";
    blob += ",\"programs\":[" + rows_json + ']';
    blob += ",\"speedup\":" + bench::statsJson(speedups);
    blob += ",\"recorder_overhead\":" +
            bench::statsJson(recorder_overheads);
    blob += '}';
    bench::writeBenchBlob("interp", blob);
    return 0;
}
