/**
 * @file
 * Interpreter throughput: retired instructions per second on the
 * legacy per-step dispatch path vs the predecoded fast path, for the
 * single-VM instrumented run and for full dual execution under both
 * drivers. The instruction counts themselves must not move — only the
 * wall clock does — so each row also cross-checks that legacy and
 * fast retire the same number of instructions.
 *
 * Emits BENCH_interp.json for run-over-run diffing.
 */
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "obs/profiler.h"
#include "support/table.h"

using namespace ldx;

namespace {

struct Sample
{
    double seconds = 0.0;
    std::uint64_t instructions = 0;
    double yields = 0.0;
    double backoffNs = 0.0;

    double
    minstrPerSec() const
    {
        return seconds > 0.0
                   ? static_cast<double>(instructions) / seconds / 1e6
                   : 0.0;
    }
};

/** Single-VM instrumented run on one dispatch path. */
Sample
runSingle(const workloads::Workload &w, int scale, bool predecode)
{
    const ir::Module &m = workloads::workloadModule(w, true);
    Sample s;
    s.seconds = bench::timeSeconds([&] {
        os::Kernel kernel(w.world(scale));
        vm::MachineConfig cfg;
        cfg.predecode = predecode;
        vm::Machine machine(m, kernel, cfg);
        machine.run();
        s.instructions = machine.stats().instructions;
    });
    return s;
}

/** Single-VM instrumented run under one fast-path dispatch mode. */
Sample
runSingleMode(const workloads::Workload &w, int scale,
              vm::DispatchMode mode)
{
    const ir::Module &m = workloads::workloadModule(w, true);
    Sample s;
    s.seconds = bench::timeSeconds([&] {
        os::Kernel kernel(w.world(scale));
        vm::MachineConfig cfg;
        cfg.dispatch = mode;
        vm::Machine machine(m, kernel, cfg);
        machine.run();
        s.instructions = machine.stats().instructions;
    });
    return s;
}

/**
 * Single-VM fast run with per-site profiling enabled. Paired with
 * the profiling-off row to pin the profiler's two costs: the off
 * configuration must be within noise of free (the counter fetch is
 * compiled into a separate template instantiation), and the on
 * configuration must stay a small constant factor.
 */
Sample
runSingleProfiled(const workloads::Workload &w, int scale)
{
    const ir::Module &m = workloads::workloadModule(w, true);
    Sample s;
    s.seconds = bench::timeSeconds([&] {
        os::Kernel kernel(w.world(scale));
        obs::SiteCounters sites;
        vm::MachineConfig cfg;
        cfg.siteProfile = &sites;
        vm::Machine machine(m, kernel, cfg);
        machine.run();
        s.instructions = machine.stats().instructions;
    });
    return s;
}

/** Lockstep dual run with both sides on one dispatch mode. */
Sample
runDualMode(const workloads::Workload &w, int scale,
            vm::DispatchMode mode)
{
    Sample s;
    s.seconds = bench::timeSeconds([&] {
        core::EngineConfig cfg;
        cfg.sinks = w.sinks;
        cfg.wallClockCap = 60.0;
        cfg.vmConfig.dispatch = mode;
        core::DualEngine engine(workloads::workloadModule(w, true),
                                w.world(scale), cfg);
        core::DualResult res = engine.run();
        s.instructions = res.masterStats.instructions +
                         res.slaveStats.instructions;
    });
    return s;
}

/**
 * Dynamic opcode-pair frequencies of one instrumented run (legacy
 * per-step path, so every retired instruction is observed), folded
 * into @p table (kNumOpcodes x kNumOpcodes row-major).
 */
void
profilePairs(const workloads::Workload &w, int scale,
             std::vector<std::uint64_t> &table)
{
    os::Kernel kernel(w.world(scale));
    vm::MachineConfig cfg;
    cfg.pairProfile = table.data();
    vm::Machine machine(workloads::workloadModule(w, true), kernel,
                        cfg);
    machine.run();
}

/** Dual run (both sides on one dispatch path), counting both VMs. */
Sample
runDualTimed(const workloads::Workload &w, int scale, bool predecode,
             bool threaded, bool recorder = true)
{
    Sample s;
    s.seconds = bench::timeSeconds([&] {
        core::EngineConfig cfg;
        cfg.sinks = w.sinks;
        cfg.threaded = threaded;
        cfg.wallClockCap = 60.0;
        cfg.vmConfig.predecode = predecode;
        cfg.flightRecorder = recorder;
        core::DualEngine engine(workloads::workloadModule(w, true),
                                w.world(scale), cfg);
        core::DualResult res = engine.run();
        s.instructions = res.masterStats.instructions +
                         res.slaveStats.instructions;
        s.yields = res.metrics.counterOr("driver.yields");
        s.backoffNs = res.metrics.counterOr("driver.backoff_ns");
    });
    return s;
}

std::string
sampleJson(const Sample &s)
{
    std::string out = "{\"seconds\":" + obs::jsonNumber(s.seconds);
    out += ",\"instructions\":" + std::to_string(s.instructions);
    out += ",\"minstr_per_sec\":" + obs::jsonNumber(s.minstrPerSec());
    out += '}';
    return out;
}

} // namespace

int
main()
{
    std::cout << "== Interpreter throughput: legacy vs predecoded ==\n\n";

    std::vector<std::string> programs = {"401.bzip2", "456.hmmer",
                                         "462.libquantum", "429.mcf"};

    TextTable table({"Program", "Minstr", "legacy Mi/s", "fast Mi/s",
                     "speedup", "dual-lk x", "dual-thr x", "rec ovh"});
    TextTable dispatch_table({"Program", "switch Mi/s", "threaded Mi/s",
                              "fused Mi/s", "single x", "dual-sw Mi/s",
                              "dual-fu Mi/s", "dual x"});
    RunningStats speedups, recorder_overheads, profiler_overheads;
    RunningStats dispatch_speedups, dual_dispatch_speedups;
    std::string rows_json;
    std::vector<std::uint64_t> pair_table(
        static_cast<std::size_t>(ir::kNumOpcodes) *
            static_cast<std::size_t>(ir::kNumOpcodes),
        0);

    for (const std::string &name : programs) {
        const workloads::Workload *w = workloads::findWorkload(name);
        if (!w) {
            std::cerr << "[bench] unknown workload " << name << "\n";
            continue;
        }
        workloads::workloadModule(*w, true); // warm the module cache

        // Grow the scale until the legacy run is long enough to time.
        int scale = w->defaultScale * 4;
        Sample legacy = runSingle(*w, scale, false);
        while (legacy.seconds < 0.05 && scale < 256) {
            scale *= 2;
            legacy = runSingle(*w, scale, false);
        }
        Sample fast = runSingle(*w, scale, true);
        Sample prof_on = runSingleProfiled(*w, scale);
        if (prof_on.instructions != fast.instructions) {
            std::cerr << "[bench] MISMATCH " << name
                      << ": profiled run retired "
                      << prof_on.instructions
                      << " instructions, unprofiled " << fast.instructions
                      << " — profiling changed execution\n";
            return 1;
        }
        if (legacy.instructions != fast.instructions) {
            std::cerr << "[bench] MISMATCH " << name
                      << ": legacy retired " << legacy.instructions
                      << " instructions, fast " << fast.instructions
                      << " — dispatch paths diverged\n";
            return 1;
        }

        // The dual rows run with the flight recorder on (the engine
        // default); the rec-off row isolates its cost, which must be
        // within noise of free.
        Sample dl_legacy = runDualTimed(*w, scale, false, false);
        Sample dl_fast = runDualTimed(*w, scale, true, false);
        Sample dl_norec =
            runDualTimed(*w, scale, true, false, /*recorder=*/false);
        Sample dt_legacy = runDualTimed(*w, scale, false, true);
        Sample dt_fast = runDualTimed(*w, scale, true, true);

        // Dispatch-mode A/B on the same build: the retired count must
        // not move, only the wall clock. The dual rows are the paper's
        // operating point (lockstep dual, recorder on).
        Sample m_switch =
            runSingleMode(*w, scale, vm::DispatchMode::Switch);
        Sample m_threaded =
            runSingleMode(*w, scale, vm::DispatchMode::Threaded);
        Sample m_fused =
            runSingleMode(*w, scale, vm::DispatchMode::Fused);
        if (m_switch.instructions != fast.instructions ||
            m_threaded.instructions != fast.instructions ||
            m_fused.instructions != fast.instructions) {
            std::cerr << "[bench] MISMATCH " << name
                      << ": dispatch modes retired different "
                         "instruction counts\n";
            return 1;
        }
        Sample dm_switch =
            runDualMode(*w, scale, vm::DispatchMode::Switch);
        Sample dm_threaded =
            runDualMode(*w, scale, vm::DispatchMode::Threaded);
        Sample dm_fused =
            runDualMode(*w, scale, vm::DispatchMode::Fused);
        if (dm_switch.instructions != dm_fused.instructions ||
            dm_threaded.instructions != dm_fused.instructions) {
            std::cerr << "[bench] MISMATCH " << name
                      << ": dual dispatch modes retired different "
                         "instruction counts\n";
            return 1;
        }
        double mode_speedup =
            m_fused.minstrPerSec() / m_switch.minstrPerSec();
        double dual_mode_speedup =
            dm_fused.minstrPerSec() / dm_switch.minstrPerSec();
        dispatch_speedups.add(mode_speedup);
        dual_dispatch_speedups.add(dual_mode_speedup);
        dispatch_table.addRow(
            {name, formatDouble(m_switch.minstrPerSec(), 1),
             formatDouble(m_threaded.minstrPerSec(), 1),
             formatDouble(m_fused.minstrPerSec(), 1),
             formatDouble(mode_speedup, 2) + "x",
             formatDouble(dm_switch.minstrPerSec(), 1),
             formatDouble(dm_fused.minstrPerSec(), 1),
             formatDouble(dual_mode_speedup, 2) + "x"});

        // Opcode-pair frequencies feed the superinstruction set
        // (docs/PERFORMANCE.md); the default scale keeps the slow
        // legacy observation pass cheap.
        profilePairs(*w, w->defaultScale, pair_table);

        double speedup = fast.minstrPerSec() / legacy.minstrPerSec();
        double dl_speedup = dl_legacy.seconds / dl_fast.seconds;
        double dt_speedup = dt_legacy.seconds / dt_fast.seconds;
        double rec_overhead = dl_norec.seconds > 0.0
                                  ? dl_fast.seconds / dl_norec.seconds
                                  : 1.0;
        double prof_overhead = fast.seconds > 0.0
                                   ? prof_on.seconds / fast.seconds
                                   : 1.0;
        speedups.add(speedup);
        recorder_overheads.add(rec_overhead);
        profiler_overheads.add(prof_overhead);

        table.addRow(
            {name,
             formatDouble(static_cast<double>(legacy.instructions) /
                              1e6,
                          1),
             formatDouble(legacy.minstrPerSec(), 1),
             formatDouble(fast.minstrPerSec(), 1),
             formatDouble(speedup, 2) + "x",
             formatDouble(dl_speedup, 2) + "x",
             formatDouble(dt_speedup, 2) + "x",
             formatDouble(rec_overhead, 3) + "x"});

        if (!rows_json.empty())
            rows_json += ',';
        rows_json += "{\"name\":" + obs::jsonString(name);
        rows_json += ",\"scale\":" + std::to_string(scale);
        rows_json += ",\"single_legacy\":" + sampleJson(legacy);
        rows_json += ",\"single_fast\":" + sampleJson(fast);
        rows_json += ",\"dual_lockstep_legacy\":" + sampleJson(dl_legacy);
        rows_json += ",\"dual_lockstep_fast\":" + sampleJson(dl_fast);
        rows_json +=
            ",\"dual_lockstep_fast_norec\":" + sampleJson(dl_norec);
        rows_json +=
            ",\"recorder_overhead\":" + obs::jsonNumber(rec_overhead);
        rows_json += ",\"single_profiled\":" + sampleJson(prof_on);
        rows_json +=
            ",\"profiler_overhead\":" + obs::jsonNumber(prof_overhead);
        rows_json += ",\"dual_threaded_legacy\":" + sampleJson(dt_legacy);
        rows_json += ",\"dual_threaded_fast\":" + sampleJson(dt_fast);
        rows_json += ",\"single_switch\":" + sampleJson(m_switch);
        rows_json += ",\"single_threaded\":" + sampleJson(m_threaded);
        rows_json += ",\"single_fused\":" + sampleJson(m_fused);
        rows_json += ",\"dual_lockstep_switch\":" + sampleJson(dm_switch);
        rows_json +=
            ",\"dual_lockstep_threaded\":" + sampleJson(dm_threaded);
        rows_json += ",\"dual_lockstep_fused\":" + sampleJson(dm_fused);
        rows_json +=
            ",\"dispatch_speedup\":" + obs::jsonNumber(mode_speedup);
        rows_json += ",\"dual_dispatch_speedup\":" +
                     obs::jsonNumber(dual_mode_speedup);
        rows_json += ",\"speedup\":" + obs::jsonNumber(speedup);
        rows_json +=
            ",\"dual_threaded_yields\":" + obs::jsonNumber(dt_fast.yields);
        rows_json += ",\"dual_threaded_backoff_ns\":" +
                     obs::jsonNumber(dt_fast.backoffNs);
        rows_json += '}';
    }

    table.print(std::cout);
    std::cout << "\nGeomean single-VM speedup: "
              << formatDouble(speedups.geomean(), 2) << "x\n";
    std::cout << "Geomean flight-recorder overhead (dual lockstep, "
                 "on/off): "
              << formatDouble(recorder_overheads.geomean(), 3)
              << "x\n";
    std::cout << "Geomean site-profiler overhead (single fast, "
                 "on/off): "
              << formatDouble(profiler_overheads.geomean(), 3)
              << "x\n";

    std::cout << "\n== Dispatch modes (switch vs threaded vs fused, "
              << (vm::hasThreadedDispatch() ? "computed goto available"
                                            : "SWITCH-ONLY BUILD")
              << ") ==\n\n";
    dispatch_table.print(std::cout);
    std::cout << "\nGeomean threaded+fused vs switch: single-VM "
              << formatDouble(dispatch_speedups.geomean(), 2)
              << "x, lockstep dual "
              << formatDouble(dual_dispatch_speedups.geomean(), 2)
              << "x\n";

    // The dynamic pair profile, most frequent first; pairs the
    // predecoder fuses are flagged so the curated set can be checked
    // against fresh data run over run.
    struct PairCount
    {
        ir::Opcode a, b;
        std::uint64_t count;
    };
    std::vector<PairCount> pairs;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(ir::kNumOpcodes); ++i)
        for (std::size_t j = 0;
             j < static_cast<std::size_t>(ir::kNumOpcodes); ++j)
            if (std::uint64_t c = pair_table
                    [i * static_cast<std::size_t>(ir::kNumOpcodes) + j])
                pairs.push_back({static_cast<ir::Opcode>(i),
                                 static_cast<ir::Opcode>(j), c});
    std::sort(pairs.begin(), pairs.end(),
              [](const PairCount &x, const PairCount &y) {
                  return x.count > y.count;
              });
    std::uint64_t pair_total = 0;
    for (const PairCount &p : pairs)
        pair_total += p.count;
    std::cout << "\n== Hottest dynamic opcode pairs (all programs, "
                 "default scale) ==\n\n";
    std::string pairs_json;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const PairCount &p = pairs[i];
        bool fused = vm::fusedXop(p.a, p.b) != 0;
        if (i < 20) {
            std::cout << "  " << ir::opcodeName(p.a) << " -> "
                      << ir::opcodeName(p.b) << ": " << p.count << " ("
                      << formatDouble(100.0 *
                                          static_cast<double>(p.count) /
                                          static_cast<double>(
                                              pair_total),
                                      1)
                      << "%)" << (fused ? "  [fused]" : "") << "\n";
        }
        if (i < 32) {
            if (!pairs_json.empty())
                pairs_json += ',';
            pairs_json += "{\"a\":";
            pairs_json += obs::jsonString(ir::opcodeName(p.a));
            pairs_json += ",\"b\":";
            pairs_json += obs::jsonString(ir::opcodeName(p.b));
            pairs_json += ",\"count\":" + std::to_string(p.count);
            pairs_json +=
                std::string(",\"fused\":") + (fused ? "true" : "false");
            pairs_json += '}';
        }
    }

    std::string blob = "{\"bench\":\"interp_throughput\"";
    blob += ",\"programs\":[" + rows_json + ']';
    blob += ",\"speedup\":" + bench::statsJson(speedups);
    blob += ",\"recorder_overhead\":" +
            bench::statsJson(recorder_overheads);
    blob += ",\"profiler_overhead\":" +
            bench::statsJson(profiler_overheads);
    blob += std::string(",\"dispatch_supported\":") +
            (vm::hasThreadedDispatch() ? "true" : "false");
    blob += ",\"dispatch_speedup\":" +
            bench::statsJson(dispatch_speedups);
    blob += ",\"dual_dispatch_speedup\":" +
            bench::statsJson(dual_dispatch_speedups);
    blob += ",\"opcode_pairs\":[" + pairs_json + ']';
    blob += '}';
    bench::writeBenchBlob("interp", blob);
    return 0;
}
