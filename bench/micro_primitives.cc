/**
 * @file
 * Google-benchmark microbenchmarks of the primitives the headline
 * numbers rest on: interpreter step rate, counter-op upkeep, the
 * instrumentation pass itself, channel operations, and one full dual
 * execution per driver.
 */
#include <benchmark/benchmark.h>

#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "ldx/channel.h"
#include "ldx/engine.h"
#include "os/kernel.h"
#include "vm/machine.h"
#include "workloads/workloads.h"

using namespace ldx;

namespace {

const workloads::Workload &
bzip()
{
    return *workloads::findWorkload("401.bzip2");
}

void
BM_NativeRun(benchmark::State &state)
{
    const ir::Module &m = workloads::workloadModule(bzip(), false);
    os::WorldSpec world = bzip().world(1);
    for (auto _ : state) {
        os::Kernel kernel(world);
        vm::Machine machine(m, kernel, {});
        machine.run();
        benchmark::DoNotOptimize(machine.exitCode());
    }
}
BENCHMARK(BM_NativeRun);

void
BM_InstrumentedRun(benchmark::State &state)
{
    const ir::Module &m = workloads::workloadModule(bzip(), true);
    os::WorldSpec world = bzip().world(1);
    for (auto _ : state) {
        os::Kernel kernel(world);
        vm::Machine machine(m, kernel, {});
        machine.run();
        benchmark::DoNotOptimize(machine.exitCode());
    }
}
BENCHMARK(BM_InstrumentedRun);

/**
 * Per-op dispatch cost of the fast path, one run per DispatchMode
 * (arg 0 = switch, 1 = threaded, 2 = fused). items_per_second is
 * retired instructions per second, so 1/items_per_second is the
 * amortized cost of dispatching one op under that mode.
 */
void
BM_DispatchPerOp(benchmark::State &state)
{
    auto mode = static_cast<vm::DispatchMode>(state.range(0));
    const ir::Module &m = workloads::workloadModule(bzip(), true);
    os::WorldSpec world = bzip().world(1);
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        os::Kernel kernel(world);
        vm::MachineConfig cfg;
        cfg.dispatch = mode;
        vm::Machine machine(m, kernel, cfg);
        machine.run();
        instrs += machine.stats().instructions;
        benchmark::DoNotOptimize(machine.exitCode());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
    state.SetLabel(vm::dispatchModeName(mode));
}
BENCHMARK(BM_DispatchPerOp)->Arg(0)->Arg(1)->Arg(2);

void
BM_DualLockstep(benchmark::State &state)
{
    const ir::Module &m = workloads::workloadModule(bzip(), true);
    os::WorldSpec world = bzip().world(1);
    for (auto _ : state) {
        core::EngineConfig cfg;
        cfg.sinks = bzip().sinks;
        core::DualEngine engine(m, world, cfg);
        auto res = engine.run();
        benchmark::DoNotOptimize(res.alignedSyscalls);
    }
}
BENCHMARK(BM_DualLockstep);

void
BM_DualThreaded(benchmark::State &state)
{
    const ir::Module &m = workloads::workloadModule(bzip(), true);
    os::WorldSpec world = bzip().world(1);
    for (auto _ : state) {
        core::EngineConfig cfg;
        cfg.sinks = bzip().sinks;
        cfg.threaded = true;
        core::DualEngine engine(m, world, cfg);
        auto res = engine.run();
        benchmark::DoNotOptimize(res.alignedSyscalls);
    }
}
BENCHMARK(BM_DualThreaded);

void
BM_CompileWorkload(benchmark::State &state)
{
    for (auto _ : state) {
        auto module = lang::compileSource(bzip().source);
        benchmark::DoNotOptimize(module->numFunctions());
    }
}
BENCHMARK(BM_CompileWorkload);

void
BM_InstrumentPass(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        auto module = lang::compileSource(
            workloads::findWorkload("403.gcc")->source);
        state.ResumeTiming();
        instrument::CounterInstrumenter pass(*module);
        auto stats = pass.run();
        benchmark::DoNotOptimize(stats.insertedOps);
    }
}
BENCHMARK(BM_InstrumentPass);

void
BM_ChannelRoundtrip(benchmark::State &state)
{
    obs::Registry registry;
    obs::Scope scope(registry, nullptr);
    core::SyncChannel chan(scope);
    core::ThreadChannel &ch = chan.thread(0);
    std::int64_t cnt = 0;
    for (auto _ : state) {
        std::lock_guard<core::CountingMutex> lock(ch.mutex);
        ch.publishPos(0, {core::PosKind::Input, ++cnt, 1, 0});
        core::QueueEntry e;
        e.cnt = cnt;
        e.site = 1;
        ch.queue.push_back(e);
        ch.queue.pop_front();
        benchmark::DoNotOptimize(ch.pos[0].cnt);
    }
}
BENCHMARK(BM_ChannelRoundtrip);

void
BM_PosCellPublishRead(benchmark::State &state)
{
    core::PosCell cell;
    std::vector<std::int64_t> stack = {3, 7};
    std::vector<std::int64_t> scratch;
    core::Position p;
    std::int64_t cnt = 0;
    for (auto _ : state) {
        cell.publish({core::PosKind::Input, ++cnt, 1, 0}, stack);
        bool truncated = false;
        cell.read(p, scratch, truncated);
        benchmark::DoNotOptimize(p.cnt);
    }
}
BENCHMARK(BM_PosCellPublishRead);

} // namespace

BENCHMARK_MAIN();
