/**
 * @file
 * Shared helpers for the table/figure reproduction binaries.
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "ldx/engine.h"
#include "os/kernel.h"
#include "vm/machine.h"
#include "workloads/workloads.h"

namespace ldx::bench {

/** Wall-clock seconds of @p fn, minimum over @p reps repetitions. */
template <typename Fn>
double
timeSeconds(Fn &&fn, int reps = 3)
{
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        double s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
        if (s < best)
            best = s;
    }
    return best;
}

/** Run a workload natively (uninstrumented, no coupling). */
inline vm::StepStatus
runNative(const workloads::Workload &w, int scale)
{
    os::Kernel kernel(w.world(scale));
    vm::Machine machine(workloads::workloadModule(w, false), kernel, {});
    return machine.run();
}

/** Run a workload natively on the instrumented module. */
inline vm::StepStatus
runInstrumentedNative(const workloads::Workload &w, int scale)
{
    os::Kernel kernel(w.world(scale));
    vm::Machine machine(workloads::workloadModule(w, true), kernel, {});
    return machine.run();
}

/** Dual-execute a workload. */
inline core::DualResult
runDual(const workloads::Workload &w, int scale,
        std::vector<core::SourceSpec> sources, bool threaded,
        std::uint64_t sched_delta = 0)
{
    core::EngineConfig cfg;
    cfg.sinks = w.sinks;
    cfg.sources = std::move(sources);
    cfg.threaded = threaded;
    cfg.slaveSchedSeedDelta = sched_delta;
    cfg.wallClockCap = 60.0;
    core::DualEngine engine(workloads::workloadModule(w, true),
                            w.world(scale), cfg);
    return engine.run();
}

/** Count the source lines of a workload's MiniC text. */
inline int
countLoc(const workloads::Workload &w)
{
    int loc = 0;
    bool nonblank = false;
    for (char c : w.source) {
        if (c == '\n') {
            if (nonblank)
                ++loc;
            nonblank = false;
        } else if (c != ' ' && c != '\t') {
            nonblank = true;
        }
    }
    return loc;
}

} // namespace ldx::bench
