/**
 * @file
 * Shared helpers for the table/figure reproduction binaries.
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "ldx/engine.h"
#include "obs/json.h"
#include "os/kernel.h"
#include "support/stats.h"
#include "vm/machine.h"
#include "workloads/workloads.h"

namespace ldx::bench {

/** Wall-clock seconds of @p fn, minimum over @p reps repetitions. */
template <typename Fn>
double
timeSeconds(Fn &&fn, int reps = 3)
{
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        double s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
        if (s < best)
            best = s;
    }
    return best;
}

/** Run a workload natively (uninstrumented, no coupling). */
inline vm::StepStatus
runNative(const workloads::Workload &w, int scale)
{
    os::Kernel kernel(w.world(scale));
    vm::Machine machine(workloads::workloadModule(w, false), kernel, {});
    return machine.run();
}

/** Run a workload natively on the instrumented module. */
inline vm::StepStatus
runInstrumentedNative(const workloads::Workload &w, int scale)
{
    os::Kernel kernel(w.world(scale));
    vm::Machine machine(workloads::workloadModule(w, true), kernel, {});
    return machine.run();
}

/** Dual-execute a workload. */
inline core::DualResult
runDual(const workloads::Workload &w, int scale,
        std::vector<core::SourceSpec> sources, bool threaded,
        std::uint64_t sched_delta = 0, bool recorder = true)
{
    core::EngineConfig cfg;
    cfg.sinks = w.sinks;
    cfg.sources = std::move(sources);
    cfg.threaded = threaded;
    cfg.slaveSchedSeedDelta = sched_delta;
    cfg.wallClockCap = 60.0;
    cfg.flightRecorder = recorder;
    core::DualEngine engine(workloads::workloadModule(w, true),
                            w.world(scale), cfg);
    return engine.run();
}

/** A RunningStats aggregate as one JSON object. */
inline std::string
statsJson(const RunningStats &s)
{
    std::string out = "{\"count\":" + std::to_string(s.count());
    out += ",\"min\":" + obs::jsonNumber(s.min());
    out += ",\"max\":" + obs::jsonNumber(s.max());
    out += ",\"mean\":" + obs::jsonNumber(s.mean());
    out += ",\"stddev\":" + obs::jsonNumber(s.stddev());
    out += ",\"geomean\":" + obs::jsonNumber(s.geomean());
    out += ",\"p50\":" + obs::jsonNumber(s.p50());
    out += ",\"p95\":" + obs::jsonNumber(s.p95());
    out += ",\"p99\":" + obs::jsonNumber(s.p99());
    out += '}';
    return out;
}

/**
 * Write @p json to BENCH_<name>.json in the working directory so CI
 * and scripts can diff machine-readable results run over run.
 */
inline void
writeBenchBlob(const std::string &name, const std::string &json)
{
    std::string path = "BENCH_" + name + ".json";
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        std::cerr << "[bench] cannot write " << path << "\n";
        return;
    }
    out << json << "\n";
    std::cerr << "[bench] wrote " << path << "\n";
}

/** Count the source lines of a workload's MiniC text. */
inline int
countLoc(const workloads::Workload &w)
{
    int loc = 0;
    bool nonblank = false;
    for (char c : w.source) {
        if (c == '\n') {
            if (nonblank)
                ++loc;
            nonblank = false;
        } else if (c != ' ' && c != '\t') {
            nonblank = true;
        }
    }
    return loc;
}

} // namespace ldx::bench
