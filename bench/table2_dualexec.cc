/**
 * @file
 * Table 2 — "Dual Execution Effectiveness": for each program with a
 * leak / no-leak mutation pair, the verdicts of LDX and of TIGHTLIP,
 * and the number of misaligned syscalls LDX tolerated before reaching
 * the sinks (with its fraction of all slave syscalls).
 *
 * Expected shape (paper): LDX answers O for the leaking mutation and
 * X for the non-leaking one; TightLip answers O for both whenever the
 * mutation perturbs the syscall stream beyond its window. Numeric
 * programs have only a leaking case (any mutation reaches the sink).
 */
#include <iostream>

#include "bench_util.h"
#include "support/table.h"
#include "taint/tightlip.h"

using namespace ldx;

namespace {

std::string
verdict(bool leak)
{
    return leak ? "O" : "X";
}

} // namespace

int
main()
{
    std::cout << "== Table 2: dual execution effectiveness "
                 "(LDX vs TightLip) ==\n\n";
    TextTable table({"Program", "Case", "Truth", "LDX", "TightLip",
                     "#syscall diffs", "diff %"});

    int ldx_correct = 0, tl_correct = 0, cases = 0;
    for (const workloads::Workload &w : workloads::allWorkloads()) {
        if (w.category == workloads::Category::Vulnerable)
            continue; // Table 2 is the leak-detection experiment
        for (const workloads::MutationCase &mc : w.mutationCases) {
            auto ldx_res = bench::runDual(w, w.defaultScale, mc.sources,
                                          /*threaded=*/false);
            auto tl_res = taint::runTightLip(
                workloads::workloadModule(w, false),
                w.world(w.defaultScale), mc.sources);

            ++cases;
            if (ldx_res.causality() == mc.expectLeak)
                ++ldx_correct;
            if (tl_res.leakReported == mc.expectLeak)
                ++tl_correct;

            table.addRow({
                w.name,
                mc.label,
                verdict(mc.expectLeak),
                verdict(ldx_res.causality()),
                verdict(tl_res.leakReported),
                std::to_string(ldx_res.syscallDiffs),
                formatPercent(ldx_res.syscallDiffRatio()),
            });
        }
    }
    table.print(std::cout);
    std::cout << "\nLDX correct verdicts:      " << ldx_correct << "/"
              << cases << "\n";
    std::cout << "TightLip correct verdicts: " << tl_correct << "/"
              << cases << "\n";
    std::cout << "(Paper: LDX distinguishes the pairs; TightLip reports "
                 "leakage for both\n mutations whenever syscall streams "
                 "diverge beyond its window.)\n";
    return 0;
}
