/**
 * @file
 * ldx — command-line driver.
 *
 *   ldx run <prog.mc> [options]       run natively, print outputs
 *   ldx dual <prog.mc> [options]      dual-execute, print the verdict
 *   ldx taint <prog.mc> [options]     run a taint-tracking baseline
 *   ldx dump <prog.mc> [options]      print the (instrumented) IR
 *   ldx corpus                        list the built-in workloads
 *   ldx bench <workload-name>         dual-execute a built-in workload
 *   ldx explain <workload|prog.mc>    dual-execute with the flight
 *                                     recorder and print the
 *                                     divergence forensics report
 *
 * Options:
 *   --env K=V            environment variable (repeatable)
 *   --file PATH=DATA     virtual file contents (repeatable)
 *   --host-file PATH=F   virtual file loaded from host file F
 *   --peer HOST=R1,R2    scripted peer responses (repeatable)
 *   --request DATA       inbound connection request (repeatable)
 *   --source-env NAME    mutate this env var        (dual/taint)
 *   --source-file PATH   mutate this file           (dual/taint)
 *   --source-peer HOST   mutate this peer's data    (dual/taint)
 *   --source-incoming    mutate inbound requests    (dual/taint)
 *   --offset N           mutation byte offset (default 0)
 *   --strategy S         off-by-one | zero | bit-flip | random
 *   --sinks LIST         comma list of net,file,console,ret,alloc
 *   --policy P           taintgrind | libdft | control   (taint)
 *   --threaded           two-OS-thread driver            (dual)
 *   --spin-policy S,Y,U  threaded-driver stall backoff: S cpu-relax
 *                        spins, then Y yields, then sleeps of U
 *                        microseconds (default 64,64,50)     (dual)
 *   --trace              print the alignment trace       (dual)
 *   --metrics[=json]     print the metrics registry and phase
 *                        timings; =json emits one machine-readable
 *                        object on stdout         (dual/bench)
 *   --trace-out FILE     write a structured trace (dual/bench)
 *   --trace-format F     jsonl | chrome (default jsonl)
 *   --flight-recorder[=N]  keep N events/side in the flight recorder
 *                        (default on, 8192)      (dual/bench/explain)
 *   --no-flight-recorder disable the flight recorder (dual/bench)
 *   --explain-format F   text | jsonl | chrome (default text)
 *   --explain-out FILE   write the explain report to FILE  (explain)
 *   --no-instrument      skip the counter pass           (dump)
 */
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "instrument/instrument.h"
#include "ir/printer.h"
#include "lang/compiler.h"
#include "ldx/engine.h"
#include "obs/json.h"
#include "obs/phase.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "os/kernel.h"
#include "os/sysno.h"
#include "support/diag.h"
#include "support/strings.h"
#include "taint/tracker.h"
#include "vm/machine.h"
#include "workloads/workloads.h"

namespace {

using namespace ldx;

struct CliOptions
{
    std::string command;
    std::string program;
    os::WorldSpec world;
    std::vector<core::SourceSpec> sources;
    std::size_t offset = 0;
    core::MutationStrategy strategy = core::MutationStrategy::OffByOne;
    core::SinkConfig sinks;
    std::string policy = "taintgrind";
    bool threaded = false;
    core::DriverConfig driver;
    bool traceAlignment = false;
    bool instrument = true;
    bool metrics = false;
    bool metricsJson = false;
    std::string traceOut;
    std::string traceFormat = "jsonl";
    bool flightRecorder = true;
    std::size_t recorderCapacity = obs::FlightRecorder::kDefaultCapacity;
    std::string explainFormat = "text";
    std::string explainOut;
};

[[noreturn]] void
usage(const std::string &error = "")
{
    if (!error.empty())
        std::cerr << "error: " << error << "\n\n";
    std::cerr <<
        "usage: ldx <run|dual|taint|dump> <prog.mc> [options]\n"
        "       ldx corpus | ldx bench <workload>\n"
        "       ldx explain <workload|prog.mc> [options]\n"
        "see the file header of tools/ldx_cli.cc for options\n";
    std::exit(2);
}

std::string
readHostFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        usage("cannot read " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::pair<std::string, std::string>
splitKv(const std::string &arg, const char *what)
{
    auto pos = arg.find('=');
    if (pos == std::string::npos)
        usage(std::string(what) + " expects KEY=VALUE, got " + arg);
    return {arg.substr(0, pos), arg.substr(pos + 1)};
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opt;
    if (argc < 2)
        usage();
    opt.command = argv[1];
    int i = 2;
    if (opt.command == "run" || opt.command == "dual" ||
        opt.command == "taint" || opt.command == "dump" ||
        opt.command == "bench" || opt.command == "explain") {
        if (argc < 3)
            usage(opt.command + " needs an argument");
        opt.program = argv[2];
        i = 3;
    } else if (opt.command != "corpus") {
        usage("unknown command " + opt.command);
    }

    auto next = [&](const char *flag) -> std::string {
        if (i >= argc)
            usage(std::string(flag) + " needs a value");
        return argv[i++];
    };

    while (i < argc) {
        std::string arg = argv[i++];
        if (arg == "--env") {
            auto [k, v] = splitKv(next("--env"), "--env");
            opt.world.env[k] = v;
        } else if (arg == "--file") {
            auto [k, v] = splitKv(next("--file"), "--file");
            opt.world.files[k] = v;
        } else if (arg == "--host-file") {
            auto [k, v] = splitKv(next("--host-file"), "--host-file");
            opt.world.files[k] = readHostFile(v);
        } else if (arg == "--peer") {
            auto [k, v] = splitKv(next("--peer"), "--peer");
            for (const std::string &r : splitString(v, ','))
                opt.world.peers[k].responses.push_back(r);
        } else if (arg == "--request") {
            opt.world.incoming.push_back({next("--request")});
        } else if (arg == "--source-env") {
            opt.sources.push_back(
                core::SourceSpec::env(next("--source-env")));
        } else if (arg == "--source-file") {
            opt.sources.push_back(
                core::SourceSpec::file(next("--source-file")));
        } else if (arg == "--source-peer") {
            opt.sources.push_back(
                core::SourceSpec::peer(next("--source-peer")));
        } else if (arg == "--source-incoming") {
            opt.sources.push_back(core::SourceSpec::incoming());
        } else if (arg == "--offset") {
            opt.offset = std::stoul(next("--offset"));
        } else if (arg == "--strategy") {
            std::string s = next("--strategy");
            if (s == "off-by-one")
                opt.strategy = core::MutationStrategy::OffByOne;
            else if (s == "zero")
                opt.strategy = core::MutationStrategy::Zero;
            else if (s == "bit-flip")
                opt.strategy = core::MutationStrategy::BitFlip;
            else if (s == "random")
                opt.strategy = core::MutationStrategy::Random;
            else
                usage("unknown strategy " + s);
        } else if (arg == "--sinks") {
            opt.sinks = core::SinkConfig{};
            opt.sinks.net = opt.sinks.file = opt.sinks.console = false;
            for (const std::string &s :
                 splitString(next("--sinks"), ',')) {
                if (s == "net")
                    opt.sinks.net = true;
                else if (s == "file")
                    opt.sinks.file = true;
                else if (s == "console")
                    opt.sinks.console = true;
                else if (s == "ret")
                    opt.sinks.retTokens = true;
                else if (s == "alloc")
                    opt.sinks.allocSizes = true;
                else
                    usage("unknown sink class " + s);
            }
        } else if (arg == "--policy") {
            opt.policy = next("--policy");
        } else if (arg == "--threaded") {
            opt.threaded = true;
        } else if (arg == "--spin-policy") {
            auto parts = splitString(next("--spin-policy"), ',');
            if (parts.size() != 3)
                usage("--spin-policy expects SPINS,YIELDS,SLEEP_US");
            opt.driver.spinCount =
                static_cast<std::uint32_t>(std::stoul(parts[0]));
            opt.driver.yieldCount =
                static_cast<std::uint32_t>(std::stoul(parts[1]));
            opt.driver.sleepMicros =
                static_cast<std::uint32_t>(std::stoul(parts[2]));
        } else if (arg == "--trace") {
            opt.traceAlignment = true;
        } else if (arg == "--metrics" || arg == "--metrics=text") {
            opt.metrics = true;
        } else if (arg == "--metrics=json") {
            opt.metrics = true;
            opt.metricsJson = true;
        } else if (arg == "--trace-out") {
            opt.traceOut = next("--trace-out");
        } else if (arg == "--trace-format") {
            opt.traceFormat = next("--trace-format");
            if (opt.traceFormat != "jsonl" && opt.traceFormat != "chrome")
                usage("unknown trace format " + opt.traceFormat +
                      " (expected jsonl or chrome)");
        } else if (arg == "--flight-recorder") {
            opt.flightRecorder = true;
        } else if (startsWith(arg, "--flight-recorder=")) {
            opt.flightRecorder = true;
            std::string n = arg.substr(sizeof("--flight-recorder=") - 1);
            std::size_t cap = std::stoul(n);
            if (!cap)
                usage("--flight-recorder capacity must be > 0");
            opt.recorderCapacity = cap;
        } else if (arg == "--no-flight-recorder") {
            opt.flightRecorder = false;
        } else if (arg == "--explain-format") {
            opt.explainFormat = next("--explain-format");
            if (opt.explainFormat != "text" &&
                opt.explainFormat != "jsonl" &&
                opt.explainFormat != "chrome")
                usage("unknown explain format " + opt.explainFormat +
                      " (expected text, jsonl or chrome)");
        } else if (arg == "--explain-out") {
            opt.explainOut = next("--explain-out");
        } else if (arg == "--no-instrument") {
            opt.instrument = false;
        } else {
            usage("unknown option " + arg);
        }
    }
    for (core::SourceSpec &src : opt.sources)
        src.offset = opt.offset;
    return opt;
}

std::unique_ptr<ir::Module>
compileProgram(const CliOptions &opt, bool instrumented,
               obs::PhaseTimer *timer = nullptr)
{
    auto module = lang::compileSource(readHostFile(opt.program), timer);
    if (instrumented) {
        if (timer)
            timer->begin("instrument");
        instrument::CounterInstrumenter pass(*module);
        auto stats = pass.run();
        if (timer)
            timer->end();
        std::cerr << "[ldx] instrumented " << stats.insertedOps
                  << " counter ops (" << stats.syscallSites
                  << " syscall sites, " << stats.loops
                  << " loops, max cnt " << stats.maxStaticCnt << ")\n";
    }
    return module;
}

/**
 * Open the --trace-out sink, if requested. @p file backs the sink and
 * must outlive it.
 */
std::unique_ptr<obs::TraceSink>
openTraceSink(const CliOptions &opt, std::ofstream &file)
{
    if (opt.traceOut.empty())
        return nullptr;
    file.open(opt.traceOut, std::ios::binary);
    if (!file)
        usage("cannot write " + opt.traceOut);
    auto sink = obs::makeTraceSink(opt.traceFormat, file);
    if (!sink)
        usage("unknown trace format " + opt.traceFormat);
    return sink;
}

/** Syscall-number resolver handed to the divergence renderers. */
std::string
resolveSysName(std::int64_t no)
{
    return os::sysName(no);
}

void
printMetricsText(std::ostream &os, const core::DualResult &res,
                 const std::vector<obs::PhaseSample> &phases)
{
    os << "metrics:\n";
    res.metrics.writeText(os);
    os << "phases:\n";
    for (const obs::PhaseSample &p : phases) {
        os << "  ";
        for (int d = 0; d < p.depth; ++d)
            os << "  ";
        os << p.name << ": " << p.seconds * 1e3 << " ms\n";
    }
}

int
cmdRun(const CliOptions &opt)
{
    auto module = compileProgram(opt, false);
    os::Kernel kernel(opt.world);
    vm::Machine machine(*module, kernel, {});
    vm::StepStatus st = machine.run();
    for (const os::OutputRecord &rec : kernel.outputs()) {
        std::cout << rec.channel << ": " << escapeBytes(rec.payload, 120)
                  << "\n";
    }
    if (st == vm::StepStatus::Trapped) {
        std::cerr << "[ldx] trapped: " << machine.trap()->message
                  << "\n";
        return 139;
    }
    std::cerr << "[ldx] exit " << machine.exitCode() << " after "
              << machine.stats().instructions << " instructions\n";
    return static_cast<int>(machine.exitCode());
}

int
cmdDual(const CliOptions &opt)
{
    std::ofstream trace_file;
    std::unique_ptr<obs::TraceSink> sink = openTraceSink(opt, trace_file);

    obs::PhaseTimer front(sink.get());
    auto module = compileProgram(opt, true, &front);

    obs::Registry registry;
    core::EngineConfig cfg;
    cfg.sources = opt.sources;
    cfg.strategy = opt.strategy;
    cfg.sinks = opt.sinks;
    cfg.threaded = opt.threaded;
    cfg.driver = opt.driver;
    cfg.recordTrace = opt.traceAlignment;
    cfg.flightRecorder = opt.flightRecorder;
    cfg.recorderCapacity = opt.recorderCapacity;
    cfg.registry = &registry;
    cfg.traceSink = sink.get();
    core::DualEngine engine(*module, opt.world, cfg);
    core::DualResult res = engine.run();
    if (sink)
        sink->flush();

    std::vector<obs::PhaseSample> phases = front.samples();
    phases.insert(phases.end(), res.phases.begin(), res.phases.end());

    // With --metrics=json, stdout carries exactly one JSON object; the
    // human-readable verdict moves to stderr.
    std::ostream &out = opt.metricsJson ? std::cerr : std::cout;

    if (opt.traceAlignment) {
        out << "alignment trace:\n";
        for (const core::TraceEvent &evt : res.trace)
            out << "  " << evt.describe() << "\n";
    }
    out << "aligned syscalls:    " << res.alignedSyscalls << "\n";
    out << "misaligned syscalls: " << res.syscallDiffs << "\n";
    out << "barrier pairings:    " << res.barrierPairings << "\n";
    if (!res.taintedResources.empty()) {
        out << "tainted resources:\n";
        for (const std::string &k : res.taintedResources)
            out << "  " << k << "\n";
    }
    if (res.causality()) {
        out << "CAUSALITY DETECTED (" << res.findings.size()
            << " finding(s)):\n";
        for (const core::Finding &f : res.findings)
            out << "  " << f.describe() << "\n";
    } else {
        out << "no causality between the sources and any sink\n";
    }
    if (res.divergence.present)
        out << "divergence: " << res.divergence.summary()
            << " (run 'ldx explain' for the full report)\n";
    if (opt.metricsJson)
        std::cout << core::resultJson(res, phases) << "\n";
    else if (opt.metrics)
        printMetricsText(std::cout, res, phases);
    return res.causality() ? 1 : 0;
}

int
cmdTaint(const CliOptions &opt)
{
    auto module = compileProgram(opt, false);
    taint::TaintRunOptions topt;
    if (opt.policy == "taintgrind")
        topt.policy = taint::TaintPolicy::taintgrind();
    else if (opt.policy == "libdft")
        topt.policy = taint::TaintPolicy::libdft();
    else if (opt.policy == "control")
        topt.policy = taint::TaintPolicy::controlAugmented();
    else
        usage("unknown policy " + opt.policy);
    topt.sources = opt.sources;
    core::SinkConfig sinks = opt.sinks;
    topt.sinkChannel = [sinks](const std::string &channel) {
        return sinks.matchesChannel(channel);
    };
    topt.retTokenSinks = opt.sinks.retTokens;
    topt.allocSizeSinks = opt.sinks.allocSizes;
    auto res = taint::runTaintAnalysis(*module, opt.world, topt);
    std::cout << "sink events: " << res.totalSinks << ", tainted: "
              << res.taintedSinks.size() << "\n";
    for (const auto &evt : res.taintedSinks) {
        std::cout << "  " << evt.channel << " labels=0x" << std::hex
                  << evt.labels << std::dec;
        if (evt.loc.line)
            std::cout << " line=" << evt.loc.line;
        std::cout << "\n";
    }
    return res.taintedSinks.empty() ? 0 : 1;
}

int
cmdDump(const CliOptions &opt)
{
    auto module = compileProgram(opt, opt.instrument);
    ir::printModule(std::cout, *module);
    return 0;
}

int
cmdCorpus()
{
    for (const workloads::Workload &w : workloads::allWorkloads()) {
        std::cout << w.name << "  [" << categoryName(w.category)
                  << "]  " << w.description << "\n";
    }
    return 0;
}

int
cmdBench(const CliOptions &opt)
{
    const workloads::Workload *w = workloads::findWorkload(opt.program);
    if (!w)
        usage("unknown workload " + opt.program + " (see 'ldx corpus')");
    std::ofstream trace_file;
    std::unique_ptr<obs::TraceSink> sink = openTraceSink(opt, trace_file);
    obs::Registry registry;
    core::EngineConfig cfg;
    cfg.sinks = w->sinks;
    cfg.sources = w->sources;
    cfg.threaded = opt.threaded;
    cfg.driver = opt.driver;
    cfg.flightRecorder = opt.flightRecorder;
    cfg.recorderCapacity = opt.recorderCapacity;
    cfg.registry = &registry;
    cfg.traceSink = sink.get();
    core::DualEngine engine(workloads::workloadModule(*w, true),
                            w->world(w->defaultScale), cfg);
    auto res = engine.run();
    if (sink)
        sink->flush();
    std::ostream &out = opt.metricsJson ? std::cerr : std::cout;
    out << w->name << ": "
        << (res.causality() ? "causality detected" : "clean")
        << " (aligned " << res.alignedSyscalls << ", diffs "
        << res.syscallDiffs << ", " << res.findings.size()
        << " finding(s))\n";
    for (const core::Finding &f : res.findings)
        out << "  " << f.describe() << "\n";
    if (res.divergence.present)
        out << "divergence: " << res.divergence.summary()
            << " (run 'ldx explain' for the full report)\n";
    if (opt.metricsJson)
        std::cout << core::resultJson(res, res.phases) << "\n";
    else if (opt.metrics)
        printMetricsText(std::cout, res, res.phases);
    return 0;
}

/**
 * Dual-execute with the flight recorder forced on and render the
 * DivergenceReport. The argument is a built-in workload name (its
 * attack mutation and sinks apply) or a .mc source file (combine with
 * --source-* / --sinks as for `ldx dual`).
 */
int
cmdExplain(const CliOptions &opt)
{
    obs::Registry registry;
    core::EngineConfig cfg;
    cfg.threaded = opt.threaded;
    cfg.driver = opt.driver;
    cfg.flightRecorder = true;
    cfg.recorderCapacity = opt.recorderCapacity;
    cfg.registry = &registry;

    std::unique_ptr<ir::Module> owned;
    const ir::Module *module = nullptr;
    os::WorldSpec world;
    const workloads::Workload *w = workloads::findWorkload(opt.program);
    if (w) {
        cfg.sinks = w->sinks;
        cfg.sources = w->sources;
        module = &workloads::workloadModule(*w, true);
        world = w->world(w->defaultScale);
    } else {
        cfg.sinks = opt.sinks;
        cfg.sources = opt.sources;
        cfg.strategy = opt.strategy;
        owned = compileProgram(opt, true);
        module = owned.get();
        world = opt.world;
    }

    core::DualEngine engine(*module, world, cfg);
    core::DualResult res = engine.run();

    std::ofstream out_file;
    std::ostream *os = &std::cout;
    if (!opt.explainOut.empty()) {
        out_file.open(opt.explainOut, std::ios::binary);
        if (!out_file)
            usage("cannot write " + opt.explainOut);
        os = &out_file;
    }

    if (!res.divergence.present) {
        // A clean run has no forensics to explain; still emit a valid
        // document so scripted consumers never see an empty file.
        if (opt.explainFormat == "text")
            *os << "clean dual execution: no divergence to explain\n";
        else if (opt.explainFormat == "jsonl")
            *os << "{\"type\":\"divergence-report\",\"present\":false}"
                << "\n";
        else
            *os << "[]\n";
        return 0;
    }

    if (opt.explainFormat == "text")
        *os << res.divergence.text(resolveSysName);
    else if (opt.explainFormat == "jsonl")
        res.divergence.writeJsonl(*os, resolveSysName);
    else
        res.divergence.writeChromeTrace(*os, resolveSysName);
    if (!opt.explainOut.empty())
        std::cerr << "[ldx] explain report written to " << opt.explainOut
                  << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        CliOptions opt = parseArgs(argc, argv);
        if (opt.command == "run")
            return cmdRun(opt);
        if (opt.command == "dual")
            return cmdDual(opt);
        if (opt.command == "taint")
            return cmdTaint(opt);
        if (opt.command == "dump")
            return cmdDump(opt);
        if (opt.command == "corpus")
            return cmdCorpus();
        if (opt.command == "bench")
            return cmdBench(opt);
        if (opt.command == "explain")
            return cmdExplain(opt);
        usage();
    } catch (const ldx::FatalError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    } catch (const ldx::PanicError &e) {
        std::cerr << "internal error: " << e.what() << "\n";
        return 3;
    }
}
