/**
 * @file
 * ldx — command-line driver.
 *
 *   ldx run <prog.mc> [options]       run natively, print outputs
 *   ldx dual <prog.mc> [options]      dual-execute, print the verdict
 *   ldx taint <prog.mc> [options]     run a taint-tracking baseline
 *   ldx dump <prog.mc> [options]      print the (instrumented) IR
 *   ldx corpus                        list the built-in workloads
 *   ldx bench <workload-name>         dual-execute a built-in workload
 *
 * Options:
 *   --env K=V            environment variable (repeatable)
 *   --file PATH=DATA     virtual file contents (repeatable)
 *   --host-file PATH=F   virtual file loaded from host file F
 *   --peer HOST=R1,R2    scripted peer responses (repeatable)
 *   --request DATA       inbound connection request (repeatable)
 *   --source-env NAME    mutate this env var        (dual/taint)
 *   --source-file PATH   mutate this file           (dual/taint)
 *   --source-peer HOST   mutate this peer's data    (dual/taint)
 *   --source-incoming    mutate inbound requests    (dual/taint)
 *   --offset N           mutation byte offset (default 0)
 *   --strategy S         off-by-one | zero | bit-flip | random
 *   --sinks LIST         comma list of net,file,console,ret,alloc
 *   --policy P           taintgrind | libdft | control   (taint)
 *   --threaded           two-OS-thread driver            (dual)
 *   --trace              print the alignment trace       (dual)
 *   --no-instrument      skip the counter pass           (dump)
 */
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "instrument/instrument.h"
#include "ir/printer.h"
#include "lang/compiler.h"
#include "ldx/engine.h"
#include "os/kernel.h"
#include "support/diag.h"
#include "support/strings.h"
#include "taint/tracker.h"
#include "vm/machine.h"
#include "workloads/workloads.h"

namespace {

using namespace ldx;

struct CliOptions
{
    std::string command;
    std::string program;
    os::WorldSpec world;
    std::vector<core::SourceSpec> sources;
    std::size_t offset = 0;
    core::MutationStrategy strategy = core::MutationStrategy::OffByOne;
    core::SinkConfig sinks;
    std::string policy = "taintgrind";
    bool threaded = false;
    bool traceAlignment = false;
    bool instrument = true;
};

[[noreturn]] void
usage(const std::string &error = "")
{
    if (!error.empty())
        std::cerr << "error: " << error << "\n\n";
    std::cerr <<
        "usage: ldx <run|dual|taint|dump> <prog.mc> [options]\n"
        "       ldx corpus | ldx bench <workload>\n"
        "see the file header of tools/ldx_cli.cc for options\n";
    std::exit(2);
}

std::string
readHostFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        usage("cannot read " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::pair<std::string, std::string>
splitKv(const std::string &arg, const char *what)
{
    auto pos = arg.find('=');
    if (pos == std::string::npos)
        usage(std::string(what) + " expects KEY=VALUE, got " + arg);
    return {arg.substr(0, pos), arg.substr(pos + 1)};
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opt;
    if (argc < 2)
        usage();
    opt.command = argv[1];
    int i = 2;
    if (opt.command == "run" || opt.command == "dual" ||
        opt.command == "taint" || opt.command == "dump" ||
        opt.command == "bench") {
        if (argc < 3)
            usage(opt.command + " needs an argument");
        opt.program = argv[2];
        i = 3;
    } else if (opt.command != "corpus") {
        usage("unknown command " + opt.command);
    }

    auto next = [&](const char *flag) -> std::string {
        if (i >= argc)
            usage(std::string(flag) + " needs a value");
        return argv[i++];
    };

    while (i < argc) {
        std::string arg = argv[i++];
        if (arg == "--env") {
            auto [k, v] = splitKv(next("--env"), "--env");
            opt.world.env[k] = v;
        } else if (arg == "--file") {
            auto [k, v] = splitKv(next("--file"), "--file");
            opt.world.files[k] = v;
        } else if (arg == "--host-file") {
            auto [k, v] = splitKv(next("--host-file"), "--host-file");
            opt.world.files[k] = readHostFile(v);
        } else if (arg == "--peer") {
            auto [k, v] = splitKv(next("--peer"), "--peer");
            for (const std::string &r : splitString(v, ','))
                opt.world.peers[k].responses.push_back(r);
        } else if (arg == "--request") {
            opt.world.incoming.push_back({next("--request")});
        } else if (arg == "--source-env") {
            opt.sources.push_back(
                core::SourceSpec::env(next("--source-env")));
        } else if (arg == "--source-file") {
            opt.sources.push_back(
                core::SourceSpec::file(next("--source-file")));
        } else if (arg == "--source-peer") {
            opt.sources.push_back(
                core::SourceSpec::peer(next("--source-peer")));
        } else if (arg == "--source-incoming") {
            opt.sources.push_back(core::SourceSpec::incoming());
        } else if (arg == "--offset") {
            opt.offset = std::stoul(next("--offset"));
        } else if (arg == "--strategy") {
            std::string s = next("--strategy");
            if (s == "off-by-one")
                opt.strategy = core::MutationStrategy::OffByOne;
            else if (s == "zero")
                opt.strategy = core::MutationStrategy::Zero;
            else if (s == "bit-flip")
                opt.strategy = core::MutationStrategy::BitFlip;
            else if (s == "random")
                opt.strategy = core::MutationStrategy::Random;
            else
                usage("unknown strategy " + s);
        } else if (arg == "--sinks") {
            opt.sinks = core::SinkConfig{};
            opt.sinks.net = opt.sinks.file = opt.sinks.console = false;
            for (const std::string &s :
                 splitString(next("--sinks"), ',')) {
                if (s == "net")
                    opt.sinks.net = true;
                else if (s == "file")
                    opt.sinks.file = true;
                else if (s == "console")
                    opt.sinks.console = true;
                else if (s == "ret")
                    opt.sinks.retTokens = true;
                else if (s == "alloc")
                    opt.sinks.allocSizes = true;
                else
                    usage("unknown sink class " + s);
            }
        } else if (arg == "--policy") {
            opt.policy = next("--policy");
        } else if (arg == "--threaded") {
            opt.threaded = true;
        } else if (arg == "--trace") {
            opt.traceAlignment = true;
        } else if (arg == "--no-instrument") {
            opt.instrument = false;
        } else {
            usage("unknown option " + arg);
        }
    }
    for (core::SourceSpec &src : opt.sources)
        src.offset = opt.offset;
    return opt;
}

std::unique_ptr<ir::Module>
compileProgram(const CliOptions &opt, bool instrumented)
{
    auto module = lang::compileSource(readHostFile(opt.program));
    if (instrumented) {
        instrument::CounterInstrumenter pass(*module);
        auto stats = pass.run();
        std::cerr << "[ldx] instrumented " << stats.insertedOps
                  << " counter ops (" << stats.syscallSites
                  << " syscall sites, " << stats.loops
                  << " loops, max cnt " << stats.maxStaticCnt << ")\n";
    }
    return module;
}

int
cmdRun(const CliOptions &opt)
{
    auto module = compileProgram(opt, false);
    os::Kernel kernel(opt.world);
    vm::Machine machine(*module, kernel, {});
    vm::StepStatus st = machine.run();
    for (const os::OutputRecord &rec : kernel.outputs()) {
        std::cout << rec.channel << ": " << escapeBytes(rec.payload, 120)
                  << "\n";
    }
    if (st == vm::StepStatus::Trapped) {
        std::cerr << "[ldx] trapped: " << machine.trap()->message
                  << "\n";
        return 139;
    }
    std::cerr << "[ldx] exit " << machine.exitCode() << " after "
              << machine.stats().instructions << " instructions\n";
    return static_cast<int>(machine.exitCode());
}

int
cmdDual(const CliOptions &opt)
{
    auto module = compileProgram(opt, true);
    core::EngineConfig cfg;
    cfg.sources = opt.sources;
    cfg.strategy = opt.strategy;
    cfg.sinks = opt.sinks;
    cfg.threaded = opt.threaded;
    cfg.recordTrace = opt.traceAlignment;
    core::DualEngine engine(*module, opt.world, cfg);
    core::DualResult res = engine.run();

    if (opt.traceAlignment) {
        std::cout << "alignment trace:\n";
        for (const core::TraceEvent &evt : res.trace)
            std::cout << "  " << evt.describe() << "\n";
    }
    std::cout << "aligned syscalls:    " << res.alignedSyscalls << "\n";
    std::cout << "misaligned syscalls: " << res.syscallDiffs << "\n";
    std::cout << "barrier pairings:    " << res.barrierPairings << "\n";
    if (!res.taintedResources.empty()) {
        std::cout << "tainted resources:\n";
        for (const std::string &k : res.taintedResources)
            std::cout << "  " << k << "\n";
    }
    if (res.causality()) {
        std::cout << "CAUSALITY DETECTED (" << res.findings.size()
                  << " finding(s)):\n";
        for (const core::Finding &f : res.findings)
            std::cout << "  " << f.describe() << "\n";
        return 1;
    }
    std::cout << "no causality between the sources and any sink\n";
    return 0;
}

int
cmdTaint(const CliOptions &opt)
{
    auto module = compileProgram(opt, false);
    taint::TaintRunOptions topt;
    if (opt.policy == "taintgrind")
        topt.policy = taint::TaintPolicy::taintgrind();
    else if (opt.policy == "libdft")
        topt.policy = taint::TaintPolicy::libdft();
    else if (opt.policy == "control")
        topt.policy = taint::TaintPolicy::controlAugmented();
    else
        usage("unknown policy " + opt.policy);
    topt.sources = opt.sources;
    core::SinkConfig sinks = opt.sinks;
    topt.sinkChannel = [sinks](const std::string &channel) {
        return sinks.matchesChannel(channel);
    };
    topt.retTokenSinks = opt.sinks.retTokens;
    topt.allocSizeSinks = opt.sinks.allocSizes;
    auto res = taint::runTaintAnalysis(*module, opt.world, topt);
    std::cout << "sink events: " << res.totalSinks << ", tainted: "
              << res.taintedSinks.size() << "\n";
    for (const auto &evt : res.taintedSinks) {
        std::cout << "  " << evt.channel << " labels=0x" << std::hex
                  << evt.labels << std::dec;
        if (evt.loc.line)
            std::cout << " line=" << evt.loc.line;
        std::cout << "\n";
    }
    return res.taintedSinks.empty() ? 0 : 1;
}

int
cmdDump(const CliOptions &opt)
{
    auto module = compileProgram(opt, opt.instrument);
    ir::printModule(std::cout, *module);
    return 0;
}

int
cmdCorpus()
{
    for (const workloads::Workload &w : workloads::allWorkloads()) {
        std::cout << w.name << "  [" << categoryName(w.category)
                  << "]  " << w.description << "\n";
    }
    return 0;
}

int
cmdBench(const CliOptions &opt)
{
    const workloads::Workload *w = workloads::findWorkload(opt.program);
    if (!w)
        usage("unknown workload " + opt.program + " (see 'ldx corpus')");
    core::EngineConfig cfg;
    cfg.sinks = w->sinks;
    cfg.sources = w->sources;
    cfg.threaded = opt.threaded;
    core::DualEngine engine(workloads::workloadModule(*w, true),
                            w->world(w->defaultScale), cfg);
    auto res = engine.run();
    std::cout << w->name << ": "
              << (res.causality() ? "causality detected" : "clean")
              << " (aligned " << res.alignedSyscalls << ", diffs "
              << res.syscallDiffs << ", " << res.findings.size()
              << " finding(s))\n";
    for (const core::Finding &f : res.findings)
        std::cout << "  " << f.describe() << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        CliOptions opt = parseArgs(argc, argv);
        if (opt.command == "run")
            return cmdRun(opt);
        if (opt.command == "dual")
            return cmdDual(opt);
        if (opt.command == "taint")
            return cmdTaint(opt);
        if (opt.command == "dump")
            return cmdDump(opt);
        if (opt.command == "corpus")
            return cmdCorpus();
        if (opt.command == "bench")
            return cmdBench(opt);
        usage();
    } catch (const ldx::FatalError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    } catch (const ldx::PanicError &e) {
        std::cerr << "internal error: " << e.what() << "\n";
        return 3;
    }
}
