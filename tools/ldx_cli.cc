/**
 * @file
 * ldx — command-line driver.
 *
 *   ldx run <prog.mc> [options]       run natively, print outputs
 *   ldx dual <prog.mc> [options]      dual-execute, print the verdict
 *   ldx taint <prog.mc> [options]     run a taint-tracking baseline
 *   ldx dump <prog.mc> [options]      print the (instrumented) IR
 *   ldx corpus                        list the built-in workloads and
 *                                     the promoted golden corpus
 *   ldx bench <workload-name>         dual-execute a built-in workload
 *   ldx explain <workload|prog.mc>    dual-execute with the flight
 *                                     recorder and print the
 *                                     divergence forensics report
 *   ldx profile <workload|prog.mc>    dual-execute with the guest
 *                                     site profiler and print the
 *                                     ldx-profile-v1 cost report
 *                                     (docs/OBSERVABILITY.md)
 *   ldx fuzz [options]                differential fuzzing: generate
 *                                     seeded programs and check the
 *                                     oracle invariants across the
 *                                     config matrix (docs/FUZZING.md)
 *   ldx campaign <workload|prog.mc>   batch causality inference: one
 *                                     baseline run enumerates sources
 *                                     and sinks, a worker pool runs
 *                                     one dual execution per (source,
 *                                     policy), and the aggregated
 *                                     causality graph is emitted as
 *                                     JSON/DOT (docs/CAMPAIGN.md)
 *   ldx compile <prog.mc> --image-cache-dir DIR
 *                                     compile (and instrument, unless
 *                                     --no-instrument) to an
 *                                     ldx-image-v1 bytecode image in
 *                                     the cache and print its path
 *
 * Exit codes (uniform across subcommands):
 *   0  clean — no causality, divergence, trap, or oracle violation
 *   1  findings — causality edges, divergence, a guest trap, or
 *      oracle violations were detected
 *   2  usage or input error (bad flags, unreadable files)
 *   3  internal error (engine invariant violation, failed queries)
 *
 * Options:
 *   --env K=V            environment variable (repeatable)
 *   --file PATH=DATA     virtual file contents (repeatable)
 *   --host-file PATH=F   virtual file loaded from host file F
 *   --peer HOST=R1,R2    scripted peer responses (repeatable)
 *   --request DATA       inbound connection request (repeatable)
 *   --source-env NAME    mutate this env var        (dual/taint)
 *   --source-file PATH   mutate this file           (dual/taint)
 *   --source-peer HOST   mutate this peer's data    (dual/taint)
 *   --source-incoming    mutate inbound requests    (dual/taint)
 *   --offset N           mutation byte offset (default 0)
 *   --strategy S         off-by-one | zero | bit-flip | random
 *   --sinks LIST         comma list of net,file,console,ret,alloc
 *   --policy P           taintgrind | libdft | control   (taint)
 *   --threaded           two-OS-thread driver            (dual)
 *   --spin-policy S,Y,U  threaded-driver stall backoff: S cpu-relax
 *                        spins, then Y yields, then sleeps of U
 *                        microseconds (default 64,64,50)     (dual)
 *   --trace              print the alignment trace       (dual)
 *   --metrics[=json]     print the metrics registry and phase
 *                        timings; =json emits one machine-readable
 *                        object on stdout         (dual/bench)
 *   --trace-out FILE     write a structured trace (dual/bench)
 *   --trace-format F     jsonl | chrome (default jsonl)
 *   --flight-recorder[=N]  keep N events/side in the flight recorder
 *                        (default on, 8192)      (dual/bench/explain)
 *   --no-flight-recorder disable the flight recorder (dual/bench)
 *   --explain-format F   text | jsonl | chrome (default text)
 *   --explain-out FILE   write the explain report to FILE  (explain)
 *   --no-instrument      skip the counter pass      (dump/compile)
 *   --dispatch M         interpreter dispatch: switch | threaded |
 *                        fused (default fused; verdicts and recorder
 *                        order are identical across modes — see
 *                        docs/PERFORMANCE.md)
 *   --image-cache-dir DIR  probe/store ldx-image-v1 bytecode images
 *                        keyed by program content; warm starts skip
 *                        the whole front end (run/dual/campaign/
 *                        fuzz --replay FILE/compile)
 *
 * Profiler options (profile; --profile-sites also shapes the
 * campaign heat map):
 *   --profile-sites N    top sites per function in the JSON report
 *                        and per heat-map section (default 20)
 *   --profile-stalls     include the driver-dependent stall section
 *                        (the report is no longer byte-diffable)
 *   --flame-out FILE     write collapsed flamegraph stacks (one
 *                        `root;...;func;op@line:col count` line per
 *                        hot site, feedable to flamegraph.pl)
 *   --annotate FILE      write the per-line annotated MiniC source
 *                        listing (retired / sys-ticks / vs-slave)
 *
 * Fuzzing options (fuzz):
 *   --seeds N            seeds to sweep (default 100)
 *   --seed-start N       first seed (default 1); also the world seed
 *                        used by --replay FILE
 *   --time-budget SECS   stop the sweep after SECS seconds (0 = off)
 *   --matrix M           full (16 cells) | quick (4 cells)
 *   --mutations N        mutated sources per mutated cell (1..3)
 *   --artifacts-dir DIR  write seed-N.mc / seed-N.min.mc /
 *                        seed-N.violations.txt /
 *                        seed-N.divergence.jsonl for failing seeds
 *   --replay SEED|FILE   re-check one seed, or a .mc reproducer
 *   --no-shrink          skip delta-debugging failing seeds
 *   --inject-skip-cnt N  fault injection: skip every Nth CntAdd in
 *                        both VMs (oracle self-test; the sweep is
 *                        expected to fail)
 *   --inject-drop-snapshot-page N
 *                        fault injection: drop the Nth dirty memory
 *                        page from every snapshot fork's slave
 *                        restore (stale-snapshot self-test; the
 *                        sweep's snapshot-equality oracle is
 *                        expected to fail)
 *
 * Campaign options (campaign):
 *   --jobs N             worker threads (default 1)
 *   --snapshot[=off]     snapshot/fork execution (default off): run
 *                        each source's shared dual prefix once and
 *                        fork every policy from the captured state;
 *                        verdicts and graphs are byte-identical to
 *                        the full-run path (docs/CAMPAIGN.md);
 *                        incompatible with --site-profile-out
 *   --queue-cap N        max outstanding queries (default 256)
 *   --deadline-ms N      per-query deadline (default 30000)
 *   --policies LIST      comma list of off-by-one,zero,bit-flip,random
 *                        (default off-by-one,zero,bit-flip)
 *   --offset N           mutation byte offset (default: whole value)
 *   --graph-out FILE     write the causality graph JSON to FILE
 *   --dot-out FILE       write the Graphviz DOT rendering to FILE
 *   --cache-dir DIR      persist query verdicts under DIR
 *   --cache-cap N        in-memory cache entries (default 4096)
 *   --exporter-out FILE  append a JSONL metrics time-series to FILE
 *                        (one snapshot per sampling interval)
 *   --exporter-prom FILE rewrite FILE atomically with the Prometheus
 *                        text exposition every sampling interval
 *   --exporter-interval-ms N
 *                        exporter sampling interval (default 500)
 *   --progress           live progress line on stderr (done/total,
 *                        q/s, ETA, cache hit rate, active workers);
 *                        auto-disabled when stderr is not a TTY
 *   --progress=force     render the progress line even when stderr
 *                        is redirected (CI logs, pipes)
 *   --profile-out FILE   write the post-run profiler report
 *                        (ldx-campaign-profile-v1 JSON) to FILE
 *   --profile-top N      slowest queries in the profile (default 10)
 *   --site-profile-out FILE
 *                        run every query with the guest site profiler
 *                        and write the merged ldx-site-heat-v1 heat
 *                        map to FILE (bypasses the result cache so
 *                        the artifact covers every query)
 *
 * Service options (serve / submit — docs/SERVE.md):
 *   ldx serve --socket PATH [options]
 *                        run the multi-tenant causality-inference
 *                        daemon on a Unix-domain socket; campaigns
 *                        from every client share one worker pool and
 *                        one sharded verdict cache; SIGINT drains
 *   ldx submit <workload|corpus-name|prog.mc> --socket PATH
 *                        submit one job to a running daemon, stream
 *                        the verdicts, exit with the offline
 *                        `ldx campaign` code
 *   --socket PATH        Unix-domain socket path (both commands)
 *   --max-tenants N      concurrent campaigns admitted (default 4)
 *   --shards N           verdict-cache shards (default 8)
 *   --max-job-queries N  reject jobs planning more queries (0 = off)
 *   --drain-timeout-ms N wait for tenants on SIGINT before forcing
 *                        sockets closed (default 30000)
 *   --id NAME            job id echoed on every frame   (submit)
 *   --stream             print each verdict frame as it arrives
 *                        (submit; `--jobs`, `--queue-cap`,
 *                        `--cache-cap`, `--cache-dir`, `--dispatch`
 *                        and the exporter flags apply to serve)
 */
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "fuzz/shrinker.h"

#include "instrument/instrument.h"
#include "ir/printer.h"
#include "lang/compiler.h"
#include "ldx/engine.h"
#include "obs/exporter.h"
#include "obs/json.h"
#include "obs/phase.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "os/kernel.h"
#include "os/sysno.h"
#include "query/campaign.h"
#include "query/profile.h"
#include "serve/client.h"
#include "serve/server.h"
#include "support/diag.h"
#include "support/strings.h"
#include "taint/tracker.h"
#include "vm/image.h"
#include "vm/machine.h"
#include "workloads/corpus/corpus.h"
#include "workloads/workloads.h"

namespace {

using namespace ldx;

/** Project version (CMake's PROJECT_VERSION; see tools/CMakeLists). */
#ifndef LDX_VERSION
#define LDX_VERSION "0.0.0"
#endif
constexpr const char *kLdxVersion = LDX_VERSION;

struct CliOptions
{
    std::string command;
    std::string program;
    os::WorldSpec world;
    std::vector<core::SourceSpec> sources;
    std::size_t offset = 0;
    bool offsetSet = false;
    core::MutationStrategy strategy = core::MutationStrategy::OffByOne;
    core::SinkConfig sinks;
    std::string policy = "taintgrind";
    bool threaded = false;
    core::DriverConfig driver;
    bool traceAlignment = false;
    bool instrument = true;
    bool metrics = false;
    bool metricsJson = false;
    bool metricsJsonStable = false;
    std::string traceOut;
    std::string traceFormat = "jsonl";
    bool flightRecorder = true;
    std::size_t recorderCapacity = obs::FlightRecorder::kDefaultCapacity;
    std::string explainFormat = "text";
    std::string explainOut;
    vm::DispatchMode dispatch = vm::DispatchMode::Fused;
    std::string imageCacheDir;

    // campaign
    int jobs = 1;
    bool snapshot = false;
    std::size_t queueCap = 256;
    double deadlineMs = 30'000.0;
    std::vector<core::MutationStrategy> policies;
    std::string graphOut;
    std::string dotOut;
    std::string cacheDir;
    std::size_t cacheCap = 4096;
    std::string exporterOut;
    std::string exporterProm;
    int exporterIntervalMs = 500;
    bool progress = false;
    bool progressForce = false;
    std::string profileOut;
    std::size_t profileTop = 10;

    // profile
    std::size_t profileSites = 20;
    bool profileStalls = false;
    std::string flameOut;
    std::string annotateOut;
    std::string siteProfileOut;

    // serve / submit
    std::string socketPath;
    std::size_t maxTenants = 4;
    std::size_t shards = 8;
    std::size_t maxJobQueries = 0;
    std::uint64_t drainTimeoutMs = 30'000;
    std::string submitId;
    bool submitStream = false;

    // fuzz
    std::uint64_t fuzzSeeds = 100;
    std::uint64_t fuzzSeedStart = 1;
    double fuzzTimeBudget = 0.0;
    std::string fuzzMatrix = "full";
    int fuzzMutations = 1;
    std::string fuzzArtifactsDir;
    std::string fuzzReplay;
    bool fuzzShrink = true;
    std::uint64_t fuzzInjectSkipCnt = 0;
    std::uint64_t fuzzInjectDropSnapshotPage = 0;
};

[[noreturn]] void
usage(const std::string &error = "")
{
    if (!error.empty())
        std::cerr << "error: " << error << "\n\n";
    std::cerr <<
        "usage: ldx <run|dual|taint|dump> <prog.mc> [options]\n"
        "       ldx corpus | ldx bench <workload>\n"
        "       ldx explain <workload|prog.mc> [options]\n"
        "       ldx profile <workload|prog.mc> [options]\n"
        "       ldx campaign <workload|corpus-name|prog.mc> [options]\n"
        "       ldx compile <prog.mc> --image-cache-dir DIR\n"
        "       ldx fuzz [options]\n"
        "       ldx serve --socket PATH [options]\n"
        "       ldx submit <workload|corpus-name|prog.mc> "
        "--socket PATH [options]\n"
        "see the file header of tools/ldx_cli.cc for options\n";
    std::exit(2);
}

/**
 * Strict numeric flag parsing. Every numeric flag goes through these:
 * garbage ("abc", "1x", "-3", "1.5" for integers) and out-of-range
 * values are usage errors (exit 2), never silent truncation, and
 * flags with a documented floor ("--jobs 0") are rejected.
 */
std::uint64_t
parseUint(const std::string &value, const char *flag,
          std::uint64_t min_value = 0)
{
    if (value.empty())
        usage(std::string(flag) + " expects a number");
    for (char c : value)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            usage(std::string(flag) +
                  " expects a non-negative integer, got '" + value +
                  "'");
    errno = 0;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
    if (errno == ERANGE || end != value.c_str() + value.size())
        usage(std::string(flag) + " value out of range: " + value);
    if (parsed < min_value)
        usage(std::string(flag) + " must be >= " +
              std::to_string(min_value) + ", got " + value);
    return parsed;
}

double
parseDouble(const std::string &value, const char *flag,
            double min_value = 0.0)
{
    if (value.empty())
        usage(std::string(flag) + " expects a number");
    errno = 0;
    char *end = nullptr;
    double parsed = std::strtod(value.c_str(), &end);
    if (errno == ERANGE || end != value.c_str() + value.size())
        usage(std::string(flag) + " expects a number, got '" + value +
              "'");
    if (!(parsed >= min_value))
        usage(std::string(flag) + " must be >= " +
              std::to_string(min_value) + ", got " + value);
    return parsed;
}

core::MutationStrategy
parseStrategy(const std::string &s, const char *flag)
{
    if (s == "off-by-one")
        return core::MutationStrategy::OffByOne;
    if (s == "zero")
        return core::MutationStrategy::Zero;
    if (s == "bit-flip")
        return core::MutationStrategy::BitFlip;
    if (s == "random")
        return core::MutationStrategy::Random;
    usage(std::string(flag) + ": unknown strategy " + s);
}

std::string
readHostFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        usage("cannot read " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::pair<std::string, std::string>
splitKv(const std::string &arg, const char *what)
{
    auto pos = arg.find('=');
    if (pos == std::string::npos)
        usage(std::string(what) + " expects KEY=VALUE, got " + arg);
    return {arg.substr(0, pos), arg.substr(pos + 1)};
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opt;
    if (argc < 2)
        usage();
    opt.command = argv[1];
    int i = 2;
    if (opt.command == "run" || opt.command == "dual" ||
        opt.command == "taint" || opt.command == "dump" ||
        opt.command == "bench" || opt.command == "explain" ||
        opt.command == "campaign" || opt.command == "compile" ||
        opt.command == "profile" || opt.command == "submit") {
        if (argc < 3)
            usage(opt.command + " needs an argument");
        opt.program = argv[2];
        i = 3;
    } else if (opt.command != "corpus" && opt.command != "fuzz" &&
               opt.command != "serve") {
        usage("unknown command " + opt.command);
    }

    auto next = [&](const char *flag) -> std::string {
        if (i >= argc)
            usage(std::string(flag) + " needs a value");
        return argv[i++];
    };

    while (i < argc) {
        std::string arg = argv[i++];
        if (arg == "--env") {
            auto [k, v] = splitKv(next("--env"), "--env");
            opt.world.env[k] = v;
        } else if (arg == "--file") {
            auto [k, v] = splitKv(next("--file"), "--file");
            opt.world.files[k] = v;
        } else if (arg == "--host-file") {
            auto [k, v] = splitKv(next("--host-file"), "--host-file");
            opt.world.files[k] = readHostFile(v);
        } else if (arg == "--peer") {
            auto [k, v] = splitKv(next("--peer"), "--peer");
            for (const std::string &r : splitString(v, ','))
                opt.world.peers[k].responses.push_back(r);
        } else if (arg == "--request") {
            opt.world.incoming.push_back({next("--request")});
        } else if (arg == "--source-env") {
            opt.sources.push_back(
                core::SourceSpec::env(next("--source-env")));
        } else if (arg == "--source-file") {
            opt.sources.push_back(
                core::SourceSpec::file(next("--source-file")));
        } else if (arg == "--source-peer") {
            opt.sources.push_back(
                core::SourceSpec::peer(next("--source-peer")));
        } else if (arg == "--source-incoming") {
            opt.sources.push_back(core::SourceSpec::incoming());
        } else if (arg == "--offset") {
            opt.offset = static_cast<std::size_t>(
                parseUint(next("--offset"), "--offset"));
            opt.offsetSet = true;
        } else if (arg == "--strategy") {
            opt.strategy = parseStrategy(next("--strategy"),
                                         "--strategy");
        } else if (arg == "--sinks") {
            opt.sinks = core::SinkConfig{};
            opt.sinks.net = opt.sinks.file = opt.sinks.console = false;
            for (const std::string &s :
                 splitString(next("--sinks"), ',')) {
                if (s == "net")
                    opt.sinks.net = true;
                else if (s == "file")
                    opt.sinks.file = true;
                else if (s == "console")
                    opt.sinks.console = true;
                else if (s == "ret")
                    opt.sinks.retTokens = true;
                else if (s == "alloc")
                    opt.sinks.allocSizes = true;
                else
                    usage("unknown sink class " + s);
            }
        } else if (arg == "--policy") {
            opt.policy = next("--policy");
        } else if (arg == "--threaded") {
            opt.threaded = true;
        } else if (arg == "--spin-policy") {
            auto parts = splitString(next("--spin-policy"), ',');
            if (parts.size() != 3)
                usage("--spin-policy expects SPINS,YIELDS,SLEEP_US");
            opt.driver.spinCount = static_cast<std::uint32_t>(
                parseUint(parts[0], "--spin-policy"));
            opt.driver.yieldCount = static_cast<std::uint32_t>(
                parseUint(parts[1], "--spin-policy"));
            opt.driver.sleepMicros = static_cast<std::uint32_t>(
                parseUint(parts[2], "--spin-policy"));
        } else if (arg == "--trace") {
            opt.traceAlignment = true;
        } else if (arg == "--metrics" || arg == "--metrics=text") {
            opt.metrics = true;
        } else if (arg == "--metrics=json") {
            opt.metrics = true;
            opt.metricsJson = true;
        } else if (arg == "--metrics=json-stable") {
            opt.metrics = true;
            opt.metricsJson = true;
            opt.metricsJsonStable = true;
        } else if (arg == "--trace-out") {
            opt.traceOut = next("--trace-out");
        } else if (arg == "--trace-format") {
            opt.traceFormat = next("--trace-format");
            if (opt.traceFormat != "jsonl" && opt.traceFormat != "chrome")
                usage("unknown trace format " + opt.traceFormat +
                      " (expected jsonl or chrome)");
        } else if (arg == "--flight-recorder") {
            opt.flightRecorder = true;
        } else if (startsWith(arg, "--flight-recorder=")) {
            opt.flightRecorder = true;
            std::string n = arg.substr(sizeof("--flight-recorder=") - 1);
            opt.recorderCapacity = static_cast<std::size_t>(
                parseUint(n, "--flight-recorder", 1));
        } else if (arg == "--no-flight-recorder") {
            opt.flightRecorder = false;
        } else if (arg == "--explain-format") {
            opt.explainFormat = next("--explain-format");
            if (opt.explainFormat != "text" &&
                opt.explainFormat != "jsonl" &&
                opt.explainFormat != "chrome")
                usage("unknown explain format " + opt.explainFormat +
                      " (expected text, jsonl or chrome)");
        } else if (arg == "--explain-out") {
            opt.explainOut = next("--explain-out");
        } else if (arg == "--no-instrument") {
            opt.instrument = false;
        } else if (arg == "--dispatch") {
            std::string v = next("--dispatch");
            if (!vm::parseDispatchMode(v, opt.dispatch))
                usage("unknown dispatch mode " + v +
                      " (expected switch, threaded or fused)");
        } else if (arg == "--image-cache-dir") {
            opt.imageCacheDir = next("--image-cache-dir");
            if (opt.imageCacheDir.empty())
                usage("--image-cache-dir expects a directory");
        } else if (arg == "--seeds") {
            opt.fuzzSeeds = parseUint(next("--seeds"), "--seeds", 1);
        } else if (arg == "--seed-start") {
            opt.fuzzSeedStart =
                parseUint(next("--seed-start"), "--seed-start");
        } else if (arg == "--time-budget") {
            opt.fuzzTimeBudget =
                parseDouble(next("--time-budget"), "--time-budget");
        } else if (arg == "--matrix") {
            opt.fuzzMatrix = next("--matrix");
            if (opt.fuzzMatrix != "full" && opt.fuzzMatrix != "quick")
                usage("unknown matrix " + opt.fuzzMatrix +
                      " (expected full or quick)");
        } else if (arg == "--mutations") {
            std::uint64_t n = parseUint(next("--mutations"),
                                        "--mutations");
            if (n > 3)
                usage("--mutations expects 0..3");
            opt.fuzzMutations = static_cast<int>(n);
        } else if (arg == "--artifacts-dir") {
            opt.fuzzArtifactsDir = next("--artifacts-dir");
        } else if (arg == "--replay") {
            opt.fuzzReplay = next("--replay");
        } else if (arg == "--no-shrink") {
            opt.fuzzShrink = false;
        } else if (arg == "--inject-skip-cnt") {
            opt.fuzzInjectSkipCnt =
                parseUint(next("--inject-skip-cnt"),
                          "--inject-skip-cnt");
        } else if (arg == "--inject-drop-snapshot-page") {
            opt.fuzzInjectDropSnapshotPage =
                parseUint(next("--inject-drop-snapshot-page"),
                          "--inject-drop-snapshot-page", 1);
        } else if (arg == "--snapshot") {
            opt.snapshot = true;
        } else if (arg == "--snapshot=off") {
            opt.snapshot = false;
        } else if (arg == "--jobs") {
            opt.jobs = static_cast<int>(
                parseUint(next("--jobs"), "--jobs", 1));
        } else if (arg == "--queue-cap") {
            opt.queueCap = static_cast<std::size_t>(
                parseUint(next("--queue-cap"), "--queue-cap", 1));
        } else if (arg == "--deadline-ms") {
            opt.deadlineMs = static_cast<double>(
                parseUint(next("--deadline-ms"), "--deadline-ms", 1));
        } else if (arg == "--policies") {
            opt.policies.clear();
            for (const std::string &s :
                 splitString(next("--policies"), ','))
                opt.policies.push_back(parseStrategy(s, "--policies"));
            if (opt.policies.empty())
                usage("--policies expects at least one policy");
        } else if (arg == "--graph-out") {
            opt.graphOut = next("--graph-out");
        } else if (arg == "--dot-out") {
            opt.dotOut = next("--dot-out");
        } else if (arg == "--cache-dir") {
            opt.cacheDir = next("--cache-dir");
        } else if (arg == "--cache-cap") {
            opt.cacheCap = static_cast<std::size_t>(
                parseUint(next("--cache-cap"), "--cache-cap", 1));
        } else if (arg == "--socket") {
            opt.socketPath = next("--socket");
        } else if (arg == "--max-tenants") {
            opt.maxTenants = static_cast<std::size_t>(
                parseUint(next("--max-tenants"), "--max-tenants", 1));
        } else if (arg == "--shards") {
            opt.shards = static_cast<std::size_t>(
                parseUint(next("--shards"), "--shards", 1));
        } else if (arg == "--max-job-queries") {
            opt.maxJobQueries = static_cast<std::size_t>(parseUint(
                next("--max-job-queries"), "--max-job-queries"));
        } else if (arg == "--drain-timeout-ms") {
            opt.drainTimeoutMs = parseUint(next("--drain-timeout-ms"),
                                           "--drain-timeout-ms", 1);
        } else if (arg == "--id") {
            opt.submitId = next("--id");
        } else if (arg == "--stream") {
            opt.submitStream = true;
        } else if (arg == "--exporter-out") {
            opt.exporterOut = next("--exporter-out");
        } else if (arg == "--exporter-prom") {
            opt.exporterProm = next("--exporter-prom");
        } else if (arg == "--exporter-interval-ms") {
            opt.exporterIntervalMs = static_cast<int>(
                parseUint(next("--exporter-interval-ms"),
                          "--exporter-interval-ms", 1));
        } else if (arg == "--progress") {
            opt.progress = true;
        } else if (arg == "--progress=force") {
            opt.progress = true;
            opt.progressForce = true;
        } else if (arg == "--profile-out") {
            opt.profileOut = next("--profile-out");
        } else if (arg == "--profile-top") {
            opt.profileTop = static_cast<std::size_t>(
                parseUint(next("--profile-top"), "--profile-top"));
        } else if (arg == "--profile-sites") {
            opt.profileSites = static_cast<std::size_t>(
                parseUint(next("--profile-sites"), "--profile-sites",
                          1));
        } else if (arg == "--profile-stalls") {
            opt.profileStalls = true;
        } else if (arg == "--flame-out") {
            opt.flameOut = next("--flame-out");
        } else if (arg == "--annotate") {
            opt.annotateOut = next("--annotate");
        } else if (arg == "--site-profile-out") {
            opt.siteProfileOut = next("--site-profile-out");
        } else {
            usage("unknown option " + arg);
        }
    }
    for (core::SourceSpec &src : opt.sources)
        src.offset = opt.offset;
    return opt;
}

/**
 * A ready-to-run program: the module, plus (on a bytecode-image cache
 * hit) the deserialized predecoded streams, shared into every VM so
 * no machine re-predecodes. predecoded references module — keep the
 * struct together.
 */
struct CompiledProgram
{
    std::unique_ptr<ir::Module> module;
    std::shared_ptr<vm::PredecodedModule> predecoded;
    bool fromImage = false;
};

/**
 * Compile opt.program, probing the --image-cache-dir first: a valid
 * cached image skips lex/parse/sema/codegen/predecode entirely (the
 * only phase recorded is "image.load"); a miss runs the front end and
 * repopulates the cache ("image.store").
 */
CompiledProgram
compileProgram(const CliOptions &opt, bool instrumented,
               obs::PhaseTimer *timer = nullptr)
{
    CompiledProgram prog;
    std::string source = readHostFile(opt.program);
    std::uint64_t key = 0;
    if (!opt.imageCacheDir.empty()) {
        key = vm::imageKey(source, instrumented);
        std::optional<vm::LoadedImage> img;
        auto probe = [&] {
            img = vm::probeImageCache(opt.imageCacheDir, key);
        };
        if (timer)
            timer->time("image.load", probe);
        else
            probe();
        if (img && img->instrumented == instrumented) {
            std::cerr << "[ldx] bytecode image hit ("
                      << vm::imageCachePath(opt.imageCacheDir, key)
                      << "), front end skipped\n";
            prog.module = std::move(img->module);
            prog.predecoded = std::move(img->predecoded);
            prog.fromImage = true;
            return prog;
        }
    }
    prog.module = lang::compileSource(source, timer);
    if (instrumented) {
        if (timer)
            timer->begin("instrument");
        instrument::CounterInstrumenter pass(*prog.module);
        auto stats = pass.run();
        if (timer)
            timer->end();
        std::cerr << "[ldx] instrumented " << stats.insertedOps
                  << " counter ops (" << stats.syscallSites
                  << " syscall sites, " << stats.loops
                  << " loops, max cnt " << stats.maxStaticCnt << ")\n";
    }
    if (!opt.imageCacheDir.empty()) {
        auto store = [&] {
            if (!vm::storeImageCache(opt.imageCacheDir, key,
                                     *prog.module, instrumented))
                std::cerr << "[ldx] warning: cannot write image under "
                          << opt.imageCacheDir << "\n";
        };
        if (timer)
            timer->time("image.store", store);
        else
            store();
    }
    return prog;
}

/**
 * Open the --trace-out sink, if requested. @p file backs the sink and
 * must outlive it.
 */
std::unique_ptr<obs::TraceSink>
openTraceSink(const CliOptions &opt, std::ofstream &file)
{
    if (opt.traceOut.empty())
        return nullptr;
    file.open(opt.traceOut, std::ios::binary);
    if (!file)
        usage("cannot write " + opt.traceOut);
    auto sink = obs::makeTraceSink(opt.traceFormat, file);
    if (!sink)
        usage("unknown trace format " + opt.traceFormat);
    return sink;
}

/** Syscall-number resolver handed to the divergence renderers. */
std::string
resolveSysName(std::int64_t no)
{
    return os::sysName(no);
}

void
printMetricsText(std::ostream &os, const core::DualResult &res,
                 const std::vector<obs::PhaseSample> &phases)
{
    os << "metrics:\n";
    res.metrics.writeText(os);
    os << "phases:\n";
    for (const obs::PhaseSample &p : phases) {
        os << "  ";
        for (int d = 0; d < p.depth; ++d)
            os << "  ";
        os << p.name << ": " << p.seconds * 1e3 << " ms\n";
    }
}

int
cmdRun(const CliOptions &opt)
{
    CompiledProgram prog = compileProgram(opt, false);
    os::Kernel kernel(opt.world);
    vm::MachineConfig mcfg;
    mcfg.dispatch = opt.dispatch;
    mcfg.predecoded = prog.predecoded;
    vm::Machine machine(*prog.module, kernel, mcfg);
    vm::StepStatus st = machine.run();
    for (const os::OutputRecord &rec : kernel.outputs()) {
        std::cout << rec.channel << ": " << escapeBytes(rec.payload, 120)
                  << "\n";
    }
    if (st == vm::StepStatus::Trapped) {
        std::cerr << "[ldx] trapped: " << machine.trap()->message
                  << "\n";
        return 1;
    }
    std::cerr << "[ldx] exit " << machine.exitCode() << " after "
              << machine.stats().instructions << " instructions\n";
    return 0;
}

int
cmdDual(const CliOptions &opt)
{
    std::ofstream trace_file;
    std::unique_ptr<obs::TraceSink> sink = openTraceSink(opt, trace_file);

    obs::PhaseTimer front(sink.get());
    CompiledProgram prog = compileProgram(opt, true, &front);

    obs::Registry registry;
    core::EngineConfig cfg;
    cfg.vmConfig.dispatch = opt.dispatch;
    cfg.vmConfig.predecoded = prog.predecoded;
    cfg.sources = opt.sources;
    cfg.strategy = opt.strategy;
    cfg.sinks = opt.sinks;
    cfg.threaded = opt.threaded;
    cfg.driver = opt.driver;
    cfg.recordTrace = opt.traceAlignment;
    cfg.flightRecorder = opt.flightRecorder;
    cfg.recorderCapacity = opt.recorderCapacity;
    cfg.registry = &registry;
    cfg.traceSink = sink.get();
    core::DualEngine engine(*prog.module, opt.world, cfg);
    core::DualResult res = engine.run();
    if (sink)
        sink->flush();

    std::vector<obs::PhaseSample> phases = front.samples();
    phases.insert(phases.end(), res.phases.begin(), res.phases.end());

    // With --metrics=json, stdout carries exactly one JSON object; the
    // human-readable verdict moves to stderr.
    std::ostream &out = opt.metricsJson ? std::cerr : std::cout;

    if (opt.traceAlignment) {
        out << "alignment trace:\n";
        for (const core::TraceEvent &evt : res.trace)
            out << "  " << evt.describe() << "\n";
    }
    out << "aligned syscalls:    " << res.alignedSyscalls << "\n";
    out << "misaligned syscalls: " << res.syscallDiffs << "\n";
    out << "barrier pairings:    " << res.barrierPairings << "\n";
    if (!res.taintedResources.empty()) {
        out << "tainted resources:\n";
        for (const std::string &k : res.taintedResources)
            out << "  " << k << "\n";
    }
    if (res.causality()) {
        out << "CAUSALITY DETECTED (" << res.findings.size()
            << " finding(s)):\n";
        for (const core::Finding &f : res.findings)
            out << "  " << f.describe() << "\n";
    } else {
        out << "no causality between the sources and any sink\n";
    }
    if (res.divergence.present)
        out << "divergence: " << res.divergence.summary()
            << " (run 'ldx explain' for the full report)\n";
    if (opt.metricsJsonStable)
        std::cout << core::resultJsonStable(res) << "\n";
    else if (opt.metricsJson)
        std::cout << core::resultJson(res, phases) << "\n";
    else if (opt.metrics)
        printMetricsText(std::cout, res, phases);
    return res.causality() ? 1 : 0;
}

int
cmdTaint(const CliOptions &opt)
{
    CompiledProgram prog = compileProgram(opt, false);
    taint::TaintRunOptions topt;
    if (opt.policy == "taintgrind")
        topt.policy = taint::TaintPolicy::taintgrind();
    else if (opt.policy == "libdft")
        topt.policy = taint::TaintPolicy::libdft();
    else if (opt.policy == "control")
        topt.policy = taint::TaintPolicy::controlAugmented();
    else
        usage("unknown policy " + opt.policy);
    topt.sources = opt.sources;
    core::SinkConfig sinks = opt.sinks;
    topt.sinkChannel = [sinks](const std::string &channel) {
        return sinks.matchesChannel(channel);
    };
    topt.retTokenSinks = opt.sinks.retTokens;
    topt.allocSizeSinks = opt.sinks.allocSizes;
    auto res = taint::runTaintAnalysis(*prog.module, opt.world, topt);
    std::cout << "sink events: " << res.totalSinks << ", tainted: "
              << res.taintedSinks.size() << "\n";
    for (const auto &evt : res.taintedSinks) {
        std::cout << "  " << evt.channel << " labels=0x" << std::hex
                  << evt.labels << std::dec;
        if (evt.loc.line)
            std::cout << " line=" << evt.loc.line;
        std::cout << "\n";
    }
    return res.taintedSinks.empty() ? 0 : 1;
}

int
cmdDump(const CliOptions &opt)
{
    CompiledProgram prog = compileProgram(opt, opt.instrument);
    ir::printModule(std::cout, *prog.module);
    return 0;
}

/**
 * Ahead-of-time front end: populate the image cache for a program so
 * later runs with the same --image-cache-dir start warm. Exit 0 on a
 * fresh store and on an already-valid cache entry alike.
 */
int
cmdCompile(const CliOptions &opt)
{
    if (opt.imageCacheDir.empty())
        usage("ldx compile requires --image-cache-dir");
    CompiledProgram prog = compileProgram(opt, opt.instrument);
    std::uint64_t key = vm::imageKey(readHostFile(opt.program),
                                     opt.instrument);
    std::string path = vm::imageCachePath(opt.imageCacheDir, key);
    if (!prog.fromImage && !vm::probeImageCache(opt.imageCacheDir, key)) {
        std::cerr << "error: image not stored at " << path << "\n";
        return 1;
    }
    std::cout << path << "\n";
    return 0;
}

/**
 * Resolve a promoted golden-corpus entry by name ("s002") or with
 * the explicit "corpus:" prefix, for commands that accept program
 * names (src/workloads/corpus/corpus.h).
 */
const workloads::CorpusEntry *
findCorpusEntry(const std::string &name)
{
    for (const workloads::CorpusEntry &e : workloads::corpusEntries())
        if (e.name == name || "corpus:" + e.name == name)
            return &e;
    return nullptr;
}

int
cmdCorpus()
{
    for (const workloads::Workload &w : workloads::allWorkloads()) {
        std::cout << w.name << "  [" << categoryName(w.category)
                  << "]  " << w.description << "\n";
    }
    for (const workloads::CorpusEntry &e : workloads::corpusEntries()) {
        std::cout << e.name << "  [golden]  promoted fuzzer program "
                  << "(seed " << e.seed << ", golden campaign graph "
                  << "src/workloads/corpus/" << e.name
                  << ".golden.json)\n";
    }
    return 0;
}

int
cmdBench(const CliOptions &opt)
{
    const workloads::Workload *w = workloads::findWorkload(opt.program);
    if (!w)
        usage("unknown workload " + opt.program + " (see 'ldx corpus')");
    std::ofstream trace_file;
    std::unique_ptr<obs::TraceSink> sink = openTraceSink(opt, trace_file);
    obs::Registry registry;
    core::EngineConfig cfg;
    cfg.vmConfig.dispatch = opt.dispatch;
    cfg.sinks = w->sinks;
    cfg.sources = w->sources;
    cfg.threaded = opt.threaded;
    cfg.driver = opt.driver;
    cfg.flightRecorder = opt.flightRecorder;
    cfg.recorderCapacity = opt.recorderCapacity;
    cfg.registry = &registry;
    cfg.traceSink = sink.get();
    core::DualEngine engine(workloads::workloadModule(*w, true),
                            w->world(w->defaultScale), cfg);
    auto res = engine.run();
    if (sink)
        sink->flush();
    std::ostream &out = opt.metricsJson ? std::cerr : std::cout;
    out << w->name << ": "
        << (res.causality() ? "causality detected" : "clean")
        << " (aligned " << res.alignedSyscalls << ", diffs "
        << res.syscallDiffs << ", " << res.findings.size()
        << " finding(s))\n";
    for (const core::Finding &f : res.findings)
        out << "  " << f.describe() << "\n";
    if (res.divergence.present)
        out << "divergence: " << res.divergence.summary()
            << " (run 'ldx explain' for the full report)\n";
    if (opt.metricsJsonStable)
        std::cout << core::resultJsonStable(res) << "\n";
    else if (opt.metricsJson)
        std::cout << core::resultJson(res, res.phases) << "\n";
    else if (opt.metrics)
        printMetricsText(std::cout, res, res.phases);
    return res.causality() ? 1 : 0;
}

/**
 * Dual-execute with the flight recorder forced on and render the
 * DivergenceReport. The argument is a built-in workload name (its
 * attack mutation and sinks apply) or a .mc source file (combine with
 * --source-* / --sinks as for `ldx dual`).
 */
int
cmdExplain(const CliOptions &opt)
{
    obs::Registry registry;
    core::EngineConfig cfg;
    cfg.vmConfig.dispatch = opt.dispatch;
    cfg.threaded = opt.threaded;
    cfg.driver = opt.driver;
    cfg.flightRecorder = true;
    cfg.recorderCapacity = opt.recorderCapacity;
    cfg.registry = &registry;

    CompiledProgram owned;
    const ir::Module *module = nullptr;
    os::WorldSpec world;
    const workloads::Workload *w = workloads::findWorkload(opt.program);
    if (w) {
        cfg.sinks = w->sinks;
        cfg.sources = w->sources;
        module = &workloads::workloadModule(*w, true);
        world = w->world(w->defaultScale);
    } else {
        cfg.sinks = opt.sinks;
        cfg.sources = opt.sources;
        cfg.strategy = opt.strategy;
        owned = compileProgram(opt, true);
        cfg.vmConfig.predecoded = owned.predecoded;
        module = owned.module.get();
        world = opt.world;
    }

    core::DualEngine engine(*module, world, cfg);
    core::DualResult res = engine.run();

    std::ofstream out_file;
    std::ostream *os = &std::cout;
    if (!opt.explainOut.empty()) {
        out_file.open(opt.explainOut, std::ios::binary);
        if (!out_file)
            usage("cannot write " + opt.explainOut);
        os = &out_file;
    }

    if (!res.divergence.present) {
        // A clean run has no forensics to explain; still emit a valid
        // document so scripted consumers never see an empty file.
        if (opt.explainFormat == "text")
            *os << "clean dual execution: no divergence to explain\n";
        else if (opt.explainFormat == "jsonl")
            *os << "{\"type\":\"divergence-report\",\"present\":false}"
                << "\n";
        else
            *os << "[]\n";
        return 0;
    }

    if (opt.explainFormat == "text")
        *os << res.divergence.text(resolveSysName);
    else if (opt.explainFormat == "jsonl")
        res.divergence.writeJsonl(*os, resolveSysName);
    else
        res.divergence.writeChromeTrace(*os, resolveSysName);
    if (!opt.explainOut.empty())
        std::cerr << "[ldx] explain report written to " << opt.explainOut
                  << "\n";
    return 1; // divergence present = findings
}

/** SIGINT latch: campaign workers drain gracefully when this flips. */
std::atomic<bool> g_campaignCancel{false};

extern "C" void
campaignSigint(int)
{
    g_campaignCancel.store(true, std::memory_order_relaxed);
}

/**
 * Write @p text to @p path (usage error when unwritable) and note it
 * on stderr.
 */
void
writeArtifact(const std::string &path, const std::string &text,
              const char *what)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        usage(std::string("cannot write ") + path);
    out << text;
    std::cerr << "[ldx] " << what << " written to " << path << "\n";
}

/**
 * Dual-execute with the guest site profiler and print the
 * `ldx-profile-v1` cost report on stdout. The argument is a built-in
 * workload (its attack mutation and sinks apply) or a .mc source
 * combined with --source-* / --sinks as for `ldx dual`. --flame-out
 * and --annotate write the derived artifacts; the exit code follows
 * the uniform contract (1 when the pair found causality).
 */
int
cmdProfile(const CliOptions &opt)
{
    obs::Registry registry;
    core::EngineConfig cfg;
    cfg.vmConfig.dispatch = opt.dispatch;
    cfg.threaded = opt.threaded;
    cfg.driver = opt.driver;
    cfg.flightRecorder = opt.flightRecorder;
    cfg.recorderCapacity = opt.recorderCapacity;
    cfg.registry = &registry;

    CompiledProgram owned;
    const ir::Module *module = nullptr;
    os::WorldSpec world;
    std::string source;
    const workloads::Workload *w = workloads::findWorkload(opt.program);
    if (w) {
        cfg.sinks = w->sinks;
        cfg.sources = w->sources;
        module = &workloads::workloadModule(*w, true);
        world = w->world(w->defaultScale);
        source = w->source;
    } else {
        cfg.sinks = opt.sinks;
        cfg.sources = opt.sources;
        cfg.strategy = opt.strategy;
        source = readHostFile(opt.program);
        owned = compileProgram(opt, true);
        cfg.vmConfig.predecoded = owned.predecoded;
        module = owned.module.get();
        world = opt.world;
    }

    // One decoded module backs both VMs and the report metadata, so
    // the counters and the site names index the same decoded streams
    // by construction.
    std::shared_ptr<vm::PredecodedModule> decoded =
        cfg.vmConfig.predecoded;
    if (!decoded) {
        decoded = std::make_shared<vm::PredecodedModule>(*module);
        decoded->decodeAll();
        cfg.vmConfig.predecoded = decoded;
    }

    obs::SiteCounters master, slave;
    cfg.masterSites = &master;
    cfg.slaveSites = &slave;

    core::DualEngine engine(*module, world, cfg);
    core::DualResult res = engine.run();

    obs::ProfileMeta meta =
        vm::buildProfileMeta(*decoded, opt.program, source);
    obs::ProfileReportOptions popt;
    popt.topSites = opt.profileSites;
    popt.includeStalls = opt.profileStalls;
    std::cout << obs::profileReportJson(meta, master, &slave, popt)
              << "\n";
    if (!opt.flameOut.empty())
        writeArtifact(opt.flameOut, obs::collapsedStacks(meta, master),
                      "flamegraph stacks");
    if (!opt.annotateOut.empty())
        writeArtifact(opt.annotateOut,
                      obs::annotateSource(meta, master, &slave),
                      "annotated source");
    std::cerr << "[ldx] profiled " << master.totalRetired()
              << " master / " << slave.totalRetired()
              << " slave retired instructions\n";
    return res.causality() ? 1 : 0;
}

int
cmdCampaign(const CliOptions &opt)
{
    std::ofstream trace_file;
    std::unique_ptr<obs::TraceSink> sink = openTraceSink(opt, trace_file);

    // The argument is a built-in workload (its sinks apply) or a .mc
    // source combined with --env/--file/... and --sinks.
    obs::PhaseTimer front(sink.get());
    CompiledProgram owned;
    const ir::Module *module = nullptr;
    os::WorldSpec world;
    query::CampaignConfig cfg;
    cfg.vmConfig.dispatch = opt.dispatch;
    const workloads::Workload *w = workloads::findWorkload(opt.program);
    std::unique_ptr<ir::Module> corpus_module;
    if (w) {
        cfg.sinks = w->sinks;
        module = &workloads::workloadModule(*w, true);
        world = w->world(w->defaultScale);
    } else if (const workloads::CorpusEntry *ce =
                   findCorpusEntry(opt.program)) {
        // Promoted golden-corpus program: checked-in source text, the
        // world still derived from the originating generator seed.
        cfg.sinks = opt.sinks;
        corpus_module = lang::compileSource(ce->source);
        instrument::CounterInstrumenter pass(*corpus_module);
        pass.run();
        module = corpus_module.get();
        world = fuzz::ProgramGenerator::worldFor(ce->seed);
    } else {
        cfg.sinks = opt.sinks;
        owned = compileProgram(opt, true, &front);
        cfg.vmConfig.predecoded = owned.predecoded;
        module = owned.module.get();
        world = opt.world;
    }

    obs::Registry registry;
    if (!opt.policies.empty())
        cfg.policies = opt.policies;
    if (opt.offsetSet)
        cfg.offset = opt.offset;
    cfg.threaded = opt.threaded;
    cfg.driver = opt.driver;
    cfg.jobs = opt.jobs;
    cfg.queueCap = opt.queueCap;
    cfg.deadlineSeconds = opt.deadlineMs / 1e3;
    cfg.cacheCapacity = opt.cacheCap;
    cfg.cacheDir = opt.cacheDir;
    cfg.snapshot = opt.snapshot;
    if (opt.snapshot && !opt.siteProfileOut.empty())
        usage("--snapshot is incompatible with --site-profile-out "
              "(a fork's site counters would miss the prefix)");
    cfg.cancel = &g_campaignCancel;
    cfg.registry = &registry;
    cfg.traceSink = sink.get();

    // Site heat map: decode up front and share the streams so the
    // heat map's metadata indexes the same decoded sites the per-query
    // counters do (the campaign would otherwise predecode privately).
    std::shared_ptr<vm::PredecodedModule> decoded =
        cfg.vmConfig.predecoded;
    if (!opt.siteProfileOut.empty()) {
        cfg.siteProfile = true;
        if (!decoded) {
            decoded = std::make_shared<vm::PredecodedModule>(*module);
            decoded->decodeAll();
            cfg.vmConfig.predecoded = decoded;
        }
    }

    // Telemetry around the run: the exporter samples the campaign
    // registry on its own thread, the progress meter renders to
    // stderr. Both stop cleanly after the (possibly SIGINT-drained)
    // run returns, so the final registry state always lands in the
    // exporter sinks.
    obs::ExporterConfig expcfg;
    expcfg.jsonlPath = opt.exporterOut;
    expcfg.promPath = opt.exporterProm;
    expcfg.intervalMs = opt.exporterIntervalMs;
    expcfg.build.version = kLdxVersion;
    expcfg.build.dispatch = vm::dispatchModeName(opt.dispatch);
    expcfg.build.computedGoto = vm::hasThreadedDispatch();
    obs::Exporter exporter(registry, expcfg);
    if (!opt.exporterOut.empty() || !opt.exporterProm.empty())
        if (!exporter.start())
            usage(exporter.error());
    // The live line is interactive chrome: writing '\r'-overwritten
    // frames into a redirected stderr just fills logs, so a non-TTY
    // disables it unless --progress=force.
    obs::ProgressMeter progress(registry, std::cerr);
    bool show_progress =
        opt.progress && (opt.progressForce || obs::stderrIsTty());
    if (opt.progress && !show_progress)
        std::cerr << "[ldx] progress line disabled (stderr is not a "
                     "TTY; use --progress=force to override)\n";
    if (show_progress)
        progress.start();

    // The SIGINT latch stays installed through telemetry teardown: a
    // second Ctrl-C while the exporter writes its final sample or the
    // Chrome sink closes its JSON array would otherwise kill the
    // process mid-artifact.
    auto prev = std::signal(SIGINT, campaignSigint);
    query::CampaignResult res = query::runCampaign(*module, world, cfg);

    if (show_progress)
        progress.stop();
    exporter.stop();
    if (sink)
        sink->flush();
    std::signal(SIGINT, prev);

    std::ostream &out = opt.metricsJson ? std::cerr : std::cout;
    out << "baseline: " << res.baseline.totalEvents << " events, "
        << res.baseline.sources.size() << " sources ("
        << res.baseline.queryableSources().size() << " queryable), "
        << res.baseline.sinks.size() << " sinks\n";
    out << "queries: " << res.queries.size() << " ("
        << res.cacheHits << " cached, " << res.dualExecutions
        << " executed, " << res.cancelledQueries << " cancelled, "
        << res.failedQueries << " failed, " << res.timedOutQueries
        << " timed out)\n";
    if (opt.snapshot)
        out << "snapshot: " << res.snapshotPrefixRuns
            << " prefix runs, " << res.snapshotForks << " forks, "
            << res.snapshotInstrsSaved << " instrs saved\n";
    out << res.graph.summaryText();
    for (std::size_t i = 0; i < res.queries.size(); ++i)
        if (res.outcomes[i].status == query::RunStatus::Failed)
            std::cerr << "[ldx] query " << res.queries[i].sourceId
                      << " [" << core::mutationStrategyName(
                             res.queries[i].strategy)
                      << "] failed: " << res.outcomes[i].error << "\n";

    if (!opt.graphOut.empty())
        writeArtifact(opt.graphOut, res.graph.toJson(),
                      "causality graph");
    if (!opt.dotOut.empty())
        writeArtifact(opt.dotOut, res.graph.toDot(), "DOT graph");
    if (!opt.profileOut.empty()) {
        query::ProfileOptions popt;
        popt.topN = opt.profileTop;
        writeArtifact(opt.profileOut,
                      query::profileJson(res, registry.snapshot(), popt),
                      "profile report");
    }
    if (!opt.siteProfileOut.empty()) {
        obs::ProfileMeta meta = vm::buildProfileMeta(
            *decoded, opt.program, w ? w->source : std::string());
        writeArtifact(opt.siteProfileOut,
                      query::siteHeatJson(res, meta, opt.profileSites),
                      "site heat map");
    }
    if (opt.metricsJson) {
        std::cout << registry.snapshot().toJson() << "\n";
    } else if (opt.metrics) {
        std::cout << "metrics:\n";
        registry.snapshot().writeText(std::cout);
        std::vector<obs::PhaseSample> phases = front.samples();
        phases.insert(phases.end(), res.phases.begin(),
                      res.phases.end());
        std::cout << "phases:\n";
        for (const obs::PhaseSample &p : phases) {
            std::cout << "  ";
            for (int d = 0; d < p.depth; ++d)
                std::cout << "  ";
            std::cout << p.name << ": " << p.seconds * 1e3 << " ms\n";
        }
    }

    if (res.failedQueries)
        return 3;
    return res.anyCausality() ? 1 : 0;
}

/** Oracle configuration from the CLI flags. */
fuzz::OracleOptions
fuzzOracleOptions(const CliOptions &opt)
{
    fuzz::OracleOptions oopt;
    oopt.mutationSources = opt.fuzzMutations;
    oopt.fullMatrix = opt.fuzzMatrix == "full";
    oopt.chaosSkipCntAddPeriod = opt.fuzzInjectSkipCnt;
    oopt.chaosDropSnapshotPage = opt.fuzzInjectDropSnapshotPage;
    oopt.imageCacheDir = opt.imageCacheDir;
    return oopt;
}

/**
 * Dump the artifacts of one failing seed: the full generated program,
 * the shrunk reproducer (when shrinking ran), the violation list, and
 * the failing cell's divergence report as JSONL.
 */
void
writeFuzzArtifacts(const CliOptions &opt, const fuzz::SeedReport &rep,
                   const std::string &minSource)
{
    if (opt.fuzzArtifactsDir.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(opt.fuzzArtifactsDir, ec);
    std::string base =
        opt.fuzzArtifactsDir + "/seed-" + std::to_string(rep.seed);
    std::ofstream(base + ".mc", std::ios::binary) << rep.source;
    if (!minSource.empty())
        std::ofstream(base + ".min.mc", std::ios::binary) << minSource;
    {
        std::ofstream out(base + ".violations.txt", std::ios::binary);
        for (const fuzz::Violation &v : rep.violations)
            out << v.describe() << "\n";
    }
    if (rep.hasFailingResult && rep.failingResult.divergence.present) {
        std::ofstream out(base + ".divergence.jsonl",
                          std::ios::binary);
        rep.failingResult.divergence.writeJsonl(out, resolveSysName);
    }
    std::cerr << "[ldx] artifacts written to " << base << ".*\n";
}

/**
 * Handle one failing seed: report, shrink (unless --no-shrink), dump
 * artifacts.
 */
void
handleFuzzFailure(const CliOptions &opt, const fuzz::Oracle &oracle,
                  const fuzz::SeedReport &rep)
{
    std::cerr << "[ldx] seed " << rep.seed << ": "
              << rep.violations.size() << " violation(s)\n";
    for (const fuzz::Violation &v : rep.violations)
        std::cerr << "  " << v.describe() << "\n";
    std::string min_source;
    if (opt.fuzzShrink && rep.compiled) {
        fuzz::ProgramGenerator gen(rep.seed,
                                   oracle.options().gen);
        fuzz::GenProgram prog = gen.generateProgram();
        // Only shrink what the generator produced; a replayed file
        // has no emission tree to delta-debug.
        if (prog.render() == rep.source) {
            fuzz::Shrinker shrinker(oracle);
            fuzz::ShrinkResult sr = shrinker.shrink(rep.seed, prog);
            min_source = sr.source;
            std::cerr << "[ldx] shrunk seed " << rep.seed << " ("
                      << sr.evaluations << " evaluations, "
                      << sr.removedNodes
                      << " nodes removed):\n"
                      << min_source;
        }
    }
    writeFuzzArtifacts(opt, rep, min_source);
}

int
cmdFuzz(const CliOptions &opt)
{
    fuzz::Oracle oracle(fuzzOracleOptions(opt));

    // Replay mode: one seed, or one .mc reproducer checked against
    // --seed-start's world and mutation plan.
    if (!opt.fuzzReplay.empty()) {
        bool numeric = !opt.fuzzReplay.empty();
        for (char c : opt.fuzzReplay)
            numeric = numeric &&
                      std::isdigit(static_cast<unsigned char>(c));
        fuzz::SeedReport rep =
            numeric ? oracle.run(parseUint(opt.fuzzReplay, "--replay"))
                    : oracle.runSource(opt.fuzzSeedStart,
                                       readHostFile(opt.fuzzReplay));
        if (!rep.compiled) {
            std::cerr << "[ldx] replay program does not compile\n";
            return 2;
        }
        if (rep.ok()) {
            std::cout << "replay clean: no oracle violations\n";
            return 0;
        }
        handleFuzzFailure(opt, oracle, rep);
        std::cout << "replay: " << rep.violations.size()
                  << " oracle violation(s)\n";
        return 1;
    }

    // Sweep mode.
    auto start = std::chrono::steady_clock::now();
    auto elapsed = [&] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };
    std::uint64_t checked = 0;
    std::uint64_t failing = 0;
    std::uint64_t last = opt.fuzzSeedStart + opt.fuzzSeeds;
    for (std::uint64_t seed = opt.fuzzSeedStart; seed < last; ++seed) {
        if (opt.fuzzTimeBudget > 0.0 &&
            elapsed() > opt.fuzzTimeBudget) {
            std::cerr << "[ldx] time budget exhausted after "
                      << checked << " seeds\n";
            break;
        }
        fuzz::SeedReport rep = oracle.run(seed);
        ++checked;
        if (!rep.ok()) {
            ++failing;
            handleFuzzFailure(opt, oracle, rep);
        }
        if (checked % 50 == 0)
            std::cerr << "[ldx] " << checked << " seeds, " << failing
                      << " failing, " << elapsed() << "s\n";
    }
    std::cout << "fuzz: " << checked << " seeds checked, " << failing
              << " failing ("
              << fuzz::Oracle::matrix(oracle.options().fullMatrix)
                     .size()
              << " dual cells/seed, " << elapsed() << "s)\n";
    return failing ? 1 : 0;
}

/**
 * `ldx serve` — run the multi-tenant daemon (docs/SERVE.md) until
 * SIGINT, then drain. The exporter samples the server registry
 * (serve.* gauges and counters) for the daemon's whole lifetime and
 * takes its final sample after the drain completes, so a Prometheus
 * file always ends with the post-drain state.
 */
int
cmdServe(const CliOptions &opt)
{
    if (opt.socketPath.empty())
        usage("serve requires --socket PATH");

    obs::Registry registry;
    serve::ServeConfig cfg;
    cfg.socketPath = opt.socketPath;
    cfg.jobs = opt.jobs;
    cfg.maxTenants = opt.maxTenants;
    cfg.shards = opt.shards;
    cfg.queueCap = opt.queueCap;
    cfg.cacheCap = opt.cacheCap;
    cfg.cacheDir = opt.cacheDir;
    cfg.maxJobQueries = opt.maxJobQueries;
    cfg.drainTimeoutMs = opt.drainTimeoutMs;
    cfg.dispatch = opt.dispatch;
    cfg.version = kLdxVersion;
    cfg.registry = &registry;
    cfg.shutdown = &g_campaignCancel;

    obs::ExporterConfig expcfg;
    expcfg.jsonlPath = opt.exporterOut;
    expcfg.promPath = opt.exporterProm;
    expcfg.intervalMs = opt.exporterIntervalMs;
    expcfg.build.version = kLdxVersion;
    expcfg.build.dispatch = vm::dispatchModeName(opt.dispatch);
    expcfg.build.computedGoto = vm::hasThreadedDispatch();
    obs::Exporter exporter(registry, expcfg);
    if (!opt.exporterOut.empty() || !opt.exporterProm.empty())
        if (!exporter.start())
            usage(exporter.error());

    serve::Server server(cfg);
    std::string err;
    if (!server.start(&err)) {
        std::cerr << "error: " << err << "\n";
        return 2;
    }
    std::cerr << "[ldx] serving on " << opt.socketPath << " ("
              << opt.jobs << " worker" << (opt.jobs == 1 ? "" : "s")
              << ", " << opt.maxTenants << " tenant slots)\n";
    auto prev = std::signal(SIGINT, campaignSigint);
    int rc = server.serve();
    std::cerr << "[ldx] drained: " << server.jobsAccepted()
              << " jobs accepted, " << server.jobsRejected()
              << " rejected\n";
    exporter.stop();
    std::signal(SIGINT, prev);
    return rc;
}

/** `ldx submit` — client side; the argument resolves exactly like
 *  `ldx campaign` (workload, corpus entry, or .mc file). */
int
cmdSubmit(const CliOptions &opt)
{
    if (opt.socketPath.empty())
        usage("submit requires --socket PATH");

    serve::SubmitOptions sopt;
    sopt.socketPath = opt.socketPath;
    sopt.graphOut = opt.graphOut;
    sopt.stream = opt.submitStream;
    serve::SubmitRequest &req = sopt.request;
    req.id = opt.submitId.empty() ? opt.program : opt.submitId;
    if (workloads::findWorkload(opt.program) ||
        findCorpusEntry(opt.program)) {
        req.workload = opt.program;
    } else {
        req.source = readHostFile(opt.program);
        req.env = opt.world.env;
        req.files = opt.world.files;
    }
    for (core::MutationStrategy p : opt.policies)
        req.policies.push_back(core::mutationStrategyName(p));
    if (opt.offsetSet)
        req.offset = opt.offset;
    req.snapshot = opt.snapshot;
    req.threaded = opt.threaded;
    req.deadlineMs = static_cast<std::uint64_t>(opt.deadlineMs);
    return serve::runSubmit(sopt, std::cout, std::cerr);
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        CliOptions opt = parseArgs(argc, argv);
        if (opt.command == "run")
            return cmdRun(opt);
        if (opt.command == "dual")
            return cmdDual(opt);
        if (opt.command == "taint")
            return cmdTaint(opt);
        if (opt.command == "dump")
            return cmdDump(opt);
        if (opt.command == "compile")
            return cmdCompile(opt);
        if (opt.command == "corpus")
            return cmdCorpus();
        if (opt.command == "bench")
            return cmdBench(opt);
        if (opt.command == "explain")
            return cmdExplain(opt);
        if (opt.command == "profile")
            return cmdProfile(opt);
        if (opt.command == "campaign")
            return cmdCampaign(opt);
        if (opt.command == "fuzz")
            return cmdFuzz(opt);
        if (opt.command == "serve")
            return cmdServe(opt);
        if (opt.command == "submit")
            return cmdSubmit(opt);
        usage();
    } catch (const ldx::FatalError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    } catch (const ldx::PanicError &e) {
        std::cerr << "internal error: " << e.what() << "\n";
        return 3;
    }
}
