/**
 * @file
 * VM-layer tests: guest memory semantics, stack/heap layout, traps,
 * the return-token mechanism, thread scheduling, mutexes, and IR
 * infrastructure (builder, printer, verifier).
 */
#include <gtest/gtest.h>

#include <sstream>

#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "lang/compiler.h"
#include "support/diag.h"
#include "testutil.h"
#include "vm/memory.h"

namespace ldx {
namespace {

using test::runProgram;

// ------------------------------------------------------------ memory

TEST(MemoryTest, ReadWriteRoundTrip)
{
    vm::Memory mem(64, 1 << 12, 2, 0);
    mem.writeI64(vm::Memory::kGlobalsBase, 0x1122334455667788LL);
    EXPECT_EQ(mem.readI64(vm::Memory::kGlobalsBase),
              0x1122334455667788LL);
    EXPECT_EQ(mem.readU8(vm::Memory::kGlobalsBase), 0x88); // little end
}

TEST(MemoryTest, OutOfRangeTraps)
{
    vm::Memory mem(16, 1 << 12, 1, 0);
    EXPECT_THROW(mem.readU8(vm::Memory::kGlobalsBase + 16), vm::VmTrap);
    EXPECT_THROW(mem.readU8(0), vm::VmTrap);
    EXPECT_THROW(mem.readU8(vm::Memory::kHeapBase), vm::VmTrap);
}

TEST(MemoryTest, HeapAllocAlignedAndJittered)
{
    vm::Memory a(16, 1 << 12, 1, 0);
    vm::Memory b(16, 1 << 12, 1, 64);
    std::uint64_t pa = a.heapAlloc(3);
    std::uint64_t pb = b.heapAlloc(3);
    EXPECT_EQ(pa % 8, 0u);
    EXPECT_EQ(pb - pa, 64u);
    std::uint64_t pa2 = a.heapAlloc(1);
    EXPECT_EQ(pa2 - pa, 8u); // 3 rounded up to 8
    a.writeU8(pa2, 0xab);
    EXPECT_EQ(a.readU8(pa2), 0xab);
}

TEST(MemoryTest, PerThreadStacks)
{
    vm::Memory mem(16, 0x100, 3, 0);
    EXPECT_EQ(mem.stackTop(0) - mem.stackFloor(0), 0x100u);
    EXPECT_EQ(mem.stackFloor(1), mem.stackTop(0));
    EXPECT_EQ(mem.stackFloor(2), mem.stackTop(1));
}

TEST(MemoryTest, CStringBounded)
{
    vm::Memory mem(32, 1 << 12, 1, 0);
    mem.writeBytes(vm::Memory::kGlobalsBase, std::string("hey\0!", 5));
    EXPECT_EQ(mem.readCString(vm::Memory::kGlobalsBase), "hey");
    EXPECT_EQ(mem.readCString(vm::Memory::kGlobalsBase, 2), "he");
}

// ----------------------------------------------------------- machine

TEST(MachineTest, StackOverflowTraps)
{
    auto r = runProgram(
        "int deep(int n) { int pad[64]; pad[0] = n;"
        "  return deep(n + pad[0]); }"
        "int main() { return deep(1); }");
    EXPECT_EQ(r.status, vm::StepStatus::Trapped);
    EXPECT_NE(r.trapMessage.find("stack overflow"), std::string::npos);
}

TEST(MachineTest, InstructionBudgetTraps)
{
    vm::MachineConfig cfg;
    cfg.maxInstructions = 1000;
    auto r = runProgram("int main() { while (1) { } return 0; }", {},
                        cfg);
    EXPECT_EQ(r.status, vm::StepStatus::Trapped);
}

TEST(MachineTest, BadIndirectCallTraps)
{
    auto r = runProgram(
        "int main() { fn f = 12345; return f(1); }");
    // The assignment stores a non-token value into the fn variable.
    EXPECT_EQ(r.status, vm::StepStatus::Trapped);
}

TEST(MachineTest, GuestMutexProtectsCounter)
{
    auto r = runProgram(R"(
int counter;
int work(int id) {
    for (int i = 0; i < 50; i = i + 1) {
        lock(7);
        counter = counter + 1;
        unlock(7);
    }
    return id;
}
int main() {
    int t1 = spawn(&work, 1);
    int t2 = spawn(&work, 2);
    work(0);
    join(t1);
    join(t2);
    return counter;
}
)");
    EXPECT_EQ(r.exitCode, 150);
}

TEST(MachineTest, JoinReturnsThreadValue)
{
    auto r = runProgram(R"(
int worker(int x) { return x * 3; }
int main() {
    int t = spawn(&worker, 14);
    return join(t);
}
)");
    EXPECT_EQ(r.exitCode, 42);
}

TEST(MachineTest, UnlockWithoutOwnershipFails)
{
    auto r = runProgram(
        "int main() { return unlock(3); }");
    EXPECT_EQ(r.exitCode, -1);
}

TEST(MachineTest, SchedulerJitterPreservesLockedResults)
{
    const char *src = R"(
int total;
int work(int id) {
    for (int i = 0; i < 30; i = i + 1) {
        lock(1);
        total = total + id;
        unlock(1);
        yield();
    }
    return 0;
}
int main() {
    int t1 = spawn(&work, 1);
    int t2 = spawn(&work, 2);
    join(t1);
    join(t2);
    return total;
}
)";
    for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
        vm::MachineConfig cfg;
        cfg.schedJitter = true;
        cfg.schedSeed = seed;
        auto r = runProgram(src, {}, cfg);
        EXPECT_EQ(r.exitCode, 90) << "seed " << seed;
    }
}

TEST(MachineTest, GlobalsInitialized)
{
    auto r = runProgram(
        "int g = 1234; char s[] = \"hi\";"
        "int main() { return g + s[0]; }");
    EXPECT_EQ(r.exitCode, 1234 + 'h');
}

// ------------------------------------------------------- ir plumbing

TEST(IrTest, BuilderProducesVerifiableFunction)
{
    ir::Module m;
    ir::Function &fn = m.addFunction("main", 0);
    fn.newBlock();
    ir::IRBuilder b(fn);
    int x = b.emitConst(40);
    int y = b.emitBinary(ir::Opcode::Add, ir::IRBuilder::reg(x),
                         ir::IRBuilder::imm(2));
    b.emitRet(ir::IRBuilder::reg(y));
    EXPECT_TRUE(ir::verifyModule(m).empty());

    os::Kernel kernel({});
    vm::Machine machine(m, kernel, {});
    EXPECT_EQ(machine.run(), vm::StepStatus::Finished);
    EXPECT_EQ(machine.exitCode(), 42);
}

TEST(IrTest, VerifierCatchesMissingTerminator)
{
    ir::Module m;
    ir::Function &fn = m.addFunction("main", 0);
    fn.newBlock();
    ir::IRBuilder b(fn);
    b.emitConst(1); // no terminator
    auto problems = ir::verifyModule(m);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("terminator"), std::string::npos);
}

TEST(IrTest, VerifierCatchesBadTargets)
{
    ir::Module m;
    ir::Function &fn = m.addFunction("main", 0);
    fn.newBlock();
    ir::IRBuilder b(fn);
    b.emitBr(7); // no such block
    EXPECT_FALSE(ir::verifyModule(m).empty());
}

TEST(IrTest, VerifierRequiresMain)
{
    ir::Module m;
    ir::Function &fn = m.addFunction("not_main", 0);
    fn.newBlock();
    ir::IRBuilder b(fn);
    b.emitRet();
    EXPECT_FALSE(ir::verifyModule(m, true).empty());
    EXPECT_TRUE(ir::verifyModule(m, false).empty());
}

TEST(IrTest, PrinterRendersCoreOpcodes)
{
    auto module = lang::compileSource(
        "int main() { int x = time(); "
        "  if (x > 0) { print(\"a\", 1); } return x; }");
    std::string text = ir::moduleToString(*module);
    EXPECT_NE(text.find("syscall"), std::string::npos);
    EXPECT_NE(text.find("condbr"), std::string::npos);
    EXPECT_NE(text.find("ret"), std::string::npos);
    EXPECT_NE(text.find("func @main"), std::string::npos);
}

TEST(IrTest, DuplicateFunctionRejected)
{
    ir::Module m;
    m.addFunction("f", 0);
    EXPECT_THROW(m.addFunction("f", 1), FatalError);
}

TEST(IrTest, GlobalLookup)
{
    ir::Module m;
    int id = m.addGlobal("g", 16, "abc");
    EXPECT_EQ(m.findGlobal("g"), id);
    EXPECT_EQ(m.findGlobal("h"), -1);
    EXPECT_THROW(m.addGlobal("g", 8), FatalError);
}

} // namespace
} // namespace ldx
