/**
 * @file
 * Flight-recorder and divergence-forensics tests.
 *
 * The load-bearing property is localization: for every workload in the
 * vulnerable program set, the DivergenceReport's first diverging event
 * must be the slave's decouple at the exact syscall where the mutated
 * resource enters the program (the injection point) — "open" for the
 * file-input attacks, "connect" for the outbound-peer attack, "recv"
 * for the inbound-request attacks. A report that points anywhere else
 * (e.g. at the downstream trap) is forensically useless.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "ldx/engine.h"
#include "obs/recorder.h"
#include "obs/report.h"
#include "os/sysno.h"
#include "testutil.h"
#include "workloads/workloads.h"

namespace ldx {
namespace {

using core::DualEngine;
using core::DualResult;
using core::EngineConfig;
using workloads::Workload;

DualResult
runWorkload(const std::string &name, bool threaded = false,
            bool recorder = true, std::size_t capacity =
                obs::FlightRecorder::kDefaultCapacity)
{
    const Workload *w = workloads::findWorkload(name);
    EXPECT_NE(w, nullptr) << name;
    EngineConfig cfg;
    cfg.sinks = w->sinks;
    cfg.sources = w->sources;
    cfg.threaded = threaded;
    cfg.flightRecorder = recorder;
    cfg.recorderCapacity = capacity;
    DualEngine engine(workloads::workloadModule(*w, true),
                      w->world(w->defaultScale), cfg);
    return engine.run();
}

// ---------------------------------------------------------------------
// Localization: first divergence == known injection point, for every
// vulnerable workload (ISSUE 3 acceptance criterion).
// ---------------------------------------------------------------------

struct InjectionPoint
{
    const char *workload;
    const char *syscall; ///< where the tainted resource is first read
};

class DivergenceLocalization
    : public ::testing::TestWithParam<InjectionPoint>
{
};

TEST_P(DivergenceLocalization, FirstDivergenceAtInjectionPoint)
{
    const InjectionPoint &p = GetParam();
    DualResult res = runWorkload(p.workload);
    ASSERT_TRUE(res.causality()) << p.workload;
    ASSERT_TRUE(res.divergence.present);
    ASSERT_TRUE(res.divergence.hasFirstDivergence);
    EXPECT_EQ(res.divergence.firstDivergence.kind,
              obs::RecKind::SyscallDecouple)
        << obs::recKindName(res.divergence.firstDivergence.kind);
    EXPECT_EQ(res.divergence.firstDivergenceSyscall, p.syscall)
        << res.divergence.summary();
    // The decouple is on the slave (the mutated side).
    EXPECT_EQ(res.divergence.firstDivergence.side, 1);
}

TEST_P(DivergenceLocalization, ThreadedDriverAgrees)
{
    const InjectionPoint &p = GetParam();
    DualResult res = runWorkload(p.workload, /*threaded=*/true);
    ASSERT_TRUE(res.divergence.present);
    ASSERT_TRUE(res.divergence.hasFirstDivergence);
    EXPECT_EQ(res.divergence.firstDivergence.kind,
              obs::RecKind::SyscallDecouple);
    EXPECT_EQ(res.divergence.firstDivergenceSyscall, p.syscall);
}

INSTANTIATE_TEST_SUITE_P(
    Vuln, DivergenceLocalization,
    ::testing::Values(InjectionPoint{"gif2png", "open"},
                      InjectionPoint{"mp3info", "open"},
                      InjectionPoint{"gzip-alloc", "open"},
                      InjectionPoint{"prozilla", "connect"},
                      InjectionPoint{"yopsweb", "recv"},
                      InjectionPoint{"ngircd", "recv"}),
    [](const ::testing::TestParamInfo<InjectionPoint> &info) {
        std::string n = info.param.workload;
        for (char &c : n)
            if (c == '-' || c == '.')
                c = '_';
        return n;
    });

// ---------------------------------------------------------------------
// Report contents.
// ---------------------------------------------------------------------

TEST(DivergenceReportTest, CarriesMutatedAndTaintedKeys)
{
    DualResult res = runWorkload("gif2png");
    ASSERT_TRUE(res.divergence.present);
    ASSERT_EQ(res.divergence.mutatedKeys.size(), 1u);
    EXPECT_EQ(res.divergence.mutatedKeys[0], "path:/input.gif");
    EXPECT_FALSE(res.divergence.taintedKeys.empty());
    EXPECT_FALSE(res.divergence.channels.empty());
    EXPECT_EQ(res.divergence.ringCapacity,
              obs::FlightRecorder::kDefaultCapacity);
}

TEST(DivergenceReportTest, PeerContextIsMasterAtSamePosition)
{
    DualResult res = runWorkload("gif2png");
    ASSERT_TRUE(res.divergence.hasPeerContext);
    const obs::RecEvent &d = res.divergence.firstDivergence;
    const obs::RecEvent &ctx = res.divergence.peerContext;
    EXPECT_EQ(ctx.side, 0);
    // The master executed the same syscall at the same position; the
    // decouple is purely taint-driven (the arg signatures match).
    EXPECT_EQ(ctx.kind, obs::RecKind::SyscallExecute);
    EXPECT_EQ(ctx.cnt, d.cnt);
    EXPECT_EQ(ctx.site, d.site);
    EXPECT_EQ(ctx.arg, d.arg);
}

TEST(DivergenceReportTest, SlaveTimelineStartsWithMutation)
{
    DualResult res = runWorkload("mp3info");
    ASSERT_TRUE(res.divergence.present);
    const auto &slave = res.divergence.events[1];
    ASSERT_FALSE(slave.empty());
    EXPECT_EQ(slave.front().kind, obs::RecKind::Mutation);
    EXPECT_EQ(slave.front().arg, obs::fnv1a("path:/song.mp3"));
}

TEST(DivergenceReportTest, RecorderOffMeansNoReport)
{
    DualResult res = runWorkload("gif2png", false, /*recorder=*/false);
    EXPECT_TRUE(res.causality()); // the verdict is unaffected
    EXPECT_FALSE(res.divergence.present);
    EXPECT_EQ(res.metrics.counterOr("recorder.events.master", 0), 0u);
    EXPECT_EQ(res.metrics.counterOr("recorder.events.slave", 0), 0u);
}

TEST(DivergenceReportTest, RecorderCountersPublished)
{
    DualResult res = runWorkload("gif2png");
    EXPECT_GT(res.metrics.counterOr("recorder.events.master", 0), 0u);
    EXPECT_GT(res.metrics.counterOr("recorder.events.slave", 0), 0u);
    EXPECT_EQ(res.metrics.counterOr("recorder.dropped", 1), 0u);
    EXPECT_EQ(res.metrics.counterOr("recorder.events.master", 0),
              res.divergence.totalEvents[0]);
    EXPECT_EQ(res.metrics.counterOr("recorder.events.slave", 0),
              res.divergence.totalEvents[1]);
}

TEST(DivergenceReportTest, TinyRingStillLocalizes)
{
    // With a 4-event ring almost everything is dropped, yet the
    // decouple events are the newest history, so the injection point
    // survives for the file workloads (mutation + 3 decouples + trap
    // push the open decouple out only on deeper programs; capacity 8
    // keeps it for gif2png: mutation, thread-start, 3 decouples,
    // trap, thread-done = 7 slave events).
    DualResult res = runWorkload("gif2png", false, true, 8);
    ASSERT_TRUE(res.divergence.present);
    EXPECT_EQ(res.divergence.ringCapacity, 8u);
    ASSERT_TRUE(res.divergence.hasFirstDivergence);
    EXPECT_EQ(res.divergence.firstDivergenceSyscall, "open");
}

// ---------------------------------------------------------------------
// Renderers.
// ---------------------------------------------------------------------

TEST(DivergenceRenderTest, SummaryNamesKindAndSyscall)
{
    DualResult res = runWorkload("prozilla");
    std::string s = res.divergence.summary();
    EXPECT_NE(s.find("decouple"), std::string::npos) << s;
    EXPECT_NE(s.find("connect"), std::string::npos) << s;
}

TEST(DivergenceRenderTest, TextHasAllSections)
{
    DualResult res = runWorkload("gif2png");
    std::string txt =
        res.divergence.text([](std::int64_t no) { return os::sysName(no); });
    EXPECT_NE(txt.find("== divergence report =="), std::string::npos);
    EXPECT_NE(txt.find("mutated sources:"), std::string::npos);
    EXPECT_NE(txt.find("first divergence:"), std::string::npos);
    EXPECT_NE(txt.find("peer context:"), std::string::npos);
    EXPECT_NE(txt.find("final channel state:"), std::string::npos);
    EXPECT_NE(txt.find("tainted resources:"), std::string::npos);
    EXPECT_NE(txt.find("timeline ("), std::string::npos);
    EXPECT_NE(txt.find("decouple open"), std::string::npos) << txt;
}

TEST(DivergenceRenderTest, JsonlHeaderThenOneEventPerLine)
{
    DualResult res = runWorkload("gif2png");
    std::ostringstream os;
    res.divergence.writeJsonl(
        os, [](std::int64_t no) { return os::sysName(no); });
    std::istringstream in(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_NE(line.find("\"type\":\"divergence-report\""),
              std::string::npos);
    EXPECT_NE(line.find("\"first_divergence\":{"), std::string::npos);
    EXPECT_NE(line.find("\"sys_name\":\"open\""), std::string::npos);
    std::size_t events = 0;
    while (std::getline(in, line)) {
        EXPECT_NE(line.find("\"type\":\"event\""), std::string::npos);
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        ++events;
    }
    EXPECT_EQ(events, res.divergence.events[0].size() +
                          res.divergence.events[1].size());
}

TEST(DivergenceRenderTest, ChromeTraceIsBracketedJsonArray)
{
    DualResult res = runWorkload("gif2png");
    std::ostringstream os;
    res.divergence.writeChromeTrace(
        os, [](std::int64_t no) { return os::sysName(no); });
    std::string out = os.str();
    EXPECT_EQ(out.front(), '[');
    EXPECT_EQ(out[out.find_last_not_of('\n')], ']');
    EXPECT_NE(out.find("\"process_name\""), std::string::npos);
    EXPECT_NE(out.find("\"decouple:open\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Clean runs: the recorder is on, the report is absent.
// ---------------------------------------------------------------------

TEST(DivergenceReportTest, CleanRunHasNoReport)
{
    const Workload *w = workloads::findWorkload("401.bzip2");
    ASSERT_NE(w, nullptr);
    EngineConfig cfg;
    cfg.sinks = w->sinks;
    // No mutated sources: master and slave stay fully aligned.
    DualEngine engine(workloads::workloadModule(*w, true),
                      w->world(w->defaultScale), cfg);
    DualResult res = engine.run();
    EXPECT_FALSE(res.causality());
    EXPECT_FALSE(res.divergence.present);
    // The recorder itself still ran.
    EXPECT_GT(res.metrics.counterOr("recorder.events.master", 0), 0u);
}

// ---------------------------------------------------------------------
// Schema: every divergence report — all six vulnerable workloads and a
// fuzz-found one — must render as valid text, JSONL, and Chrome trace
// output, with a localized first-divergence site in each format.
// ---------------------------------------------------------------------

void
expectValidRenderings(const DualResult &res, const std::string &label)
{
    SCOPED_TRACE(label);
    ASSERT_TRUE(res.divergence.present);
    ASSERT_TRUE(res.divergence.hasFirstDivergence);
    EXPECT_GE(res.divergence.firstDivergence.site, 0);

    auto names = [](std::int64_t no) { return os::sysName(no); };

    std::string text = res.divergence.text(names);
    EXPECT_NE(text.find("first divergence"), std::string::npos);
    EXPECT_NE(text.find(res.divergence.firstDivergenceSyscall),
              std::string::npos);

    std::ostringstream jsonl;
    res.divergence.writeJsonl(jsonl, names);
    EXPECT_TRUE(test::validJsonl(jsonl.str())) << jsonl.str();
    std::string header = jsonl.str().substr(0, jsonl.str().find('\n'));
    EXPECT_NE(header.find("\"type\":\"divergence-report\""),
              std::string::npos);
    EXPECT_NE(header.find("\"first_divergence\""), std::string::npos);
    EXPECT_NE(header.find("\"site\":" +
                          std::to_string(
                              res.divergence.firstDivergence.site)),
              std::string::npos);

    std::ostringstream chrome;
    res.divergence.writeChromeTrace(chrome, names);
    EXPECT_TRUE(test::validJson(chrome.str())) << chrome.str();
}

class DivergenceSchema : public ::testing::TestWithParam<const char *>
{
};

TEST_P(DivergenceSchema, AllFormatsRenderValidOutput)
{
    expectValidRenderings(runWorkload(GetParam()), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Vuln, DivergenceSchema,
    ::testing::Values("gif2png", "mp3info", "gzip-alloc", "prozilla",
                      "yopsweb", "ngircd"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string n = info.param;
        for (char &c : n)
            if (c == '-' || c == '.')
                c = '_';
        return n;
    });

TEST(DivergenceSchema, FuzzFoundDivergenceRendersValidOutput)
{
    // Sweep generated seeds under mutation until one diverges, then
    // hold its report to the same schema bar as the curated
    // workloads. Mutating /input.txt at offset 0 flips the branch
    // structure of most generated programs, so this terminates fast.
    fuzz::Oracle oracle;
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        fuzz::ProgramGenerator gen(seed);
        auto module = lang::compileSource(gen.generate());
        instrument::CounterInstrumenter pass(*module);
        pass.run();
        EngineConfig cfg;
        cfg.flightRecorder = true;
        cfg.wallClockCap = 30.0;
        cfg.sources = {core::SourceSpec::file("/input.txt", 0)};
        DualEngine engine(*module,
                          fuzz::ProgramGenerator::worldFor(seed), cfg);
        DualResult res = engine.run();
        if (!res.divergence.present)
            continue;
        expectValidRenderings(res, "seed " + std::to_string(seed));
        return;
    }
    FAIL() << "no mutated seed diverged within 50 seeds";
}

} // namespace
} // namespace ldx
