/**
 * @file
 * Unit tests for the support layer: strings, stats, tables, PRNG,
 * diagnostics.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "support/diag.h"
#include "support/prng.h"
#include "support/stats.h"
#include "support/strings.h"
#include "support/table.h"

namespace ldx {
namespace {

TEST(StringsTest, SplitPreservesEmptyFields)
{
    auto parts = splitString("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSingleField)
{
    auto parts = splitString("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, JoinRoundTrip)
{
    std::vector<std::string> parts = {"x", "y", "z"};
    EXPECT_EQ(joinStrings(parts, ", "), "x, y, z");
    EXPECT_EQ(joinStrings({}, ","), "");
}

TEST(StringsTest, PrefixSuffix)
{
    EXPECT_TRUE(startsWith("net:host", "net:"));
    EXPECT_FALSE(startsWith("ne", "net:"));
    EXPECT_TRUE(endsWith("a.txt", ".txt"));
    EXPECT_FALSE(endsWith("txt", "a.txt"));
}

TEST(StringsTest, Trim)
{
    EXPECT_EQ(trimString("  hi \t\n"), "hi");
    EXPECT_EQ(trimString("   "), "");
    EXPECT_EQ(trimString("x"), "x");
}

TEST(StringsTest, EscapeBytes)
{
    EXPECT_EQ(escapeBytes("ab"), "ab");
    EXPECT_EQ(escapeBytes(std::string("\x01z", 2)), "\\x01z");
    EXPECT_EQ(escapeBytes("abcdef", 3), "abc...");
}

TEST(StatsTest, MinMaxMeanStddev)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.1380899, 1e-6);
}

TEST(StatsTest, EmptyAndSingle)
{
    RunningStats s;
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
    s.add(3.0);
    EXPECT_EQ(s.stddev(), 0.0);
    EXPECT_NEAR(s.geomean(), 3.0, 1e-12);
}

TEST(StatsTest, Geomean)
{
    RunningStats s;
    s.add(1.0);
    s.add(100.0);
    EXPECT_NEAR(s.geomean(), 10.0, 1e-9);
}

TEST(StatsTest, Percentiles)
{
    RunningStats s;
    // Insertion order must not matter.
    for (double v : {9.0, 1.0, 5.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0, 10.0})
        s.add(v);
    EXPECT_NEAR(s.p50(), 5.5, 1e-12);
    EXPECT_NEAR(s.percentile(0.0), 1.0, 1e-12);
    EXPECT_NEAR(s.percentile(100.0), 10.0, 1e-12);
    // Linear interpolation between order statistics.
    EXPECT_NEAR(s.p95(), 9.55, 1e-12);
    EXPECT_NEAR(s.p99(), 9.91, 1e-12);
}

TEST(StatsTest, PercentileEdgeCases)
{
    RunningStats s;
    EXPECT_EQ(s.p50(), 0.0);
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.p50(), 42.0);
    EXPECT_DOUBLE_EQ(s.p99(), 42.0);
}

TEST(StatsTest, EmptyStreamPinsEveryAggregateToZero)
{
    // The profiler and exporter serialize these unconditionally; an
    // idle stream must be all-zero, never inf/NaN/stale.
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
    EXPECT_EQ(s.geomean(), 0.0);
    EXPECT_EQ(s.percentile(0.0), 0.0);
    EXPECT_EQ(s.percentile(100.0), 0.0);
}

TEST(StatsTest, GeomeanNonPositiveSamplePinsToZero)
{
    // log(0)/log(-x) would poison the accumulator with -inf/NaN.
    RunningStats zero;
    zero.add(4.0);
    zero.add(0.0);
    EXPECT_EQ(zero.geomean(), 0.0);
    RunningStats neg;
    neg.add(4.0);
    neg.add(-1.0);
    EXPECT_EQ(neg.geomean(), 0.0);
}

TEST(TableTest, AlignsColumns)
{
    TextTable t({"a", "bb"});
    t.addRow({"xxx", "y"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("| a   | bb |"), std::string::npos);
    EXPECT_NE(out.find("| xxx | y  |"), std::string::npos);
}

TEST(TableTest, ArityMismatchPanics)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(PrngTest, DeterministicAndSeedSensitive)
{
    Prng a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    Prng a2(42);
    EXPECT_NE(a2.next(), c.next());
}

TEST(PrngTest, RangeBounds)
{
    Prng p(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = p.range(-3, 5);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 5);
    }
}

TEST(PrngTest, BelowNeverReachesBound)
{
    Prng p(11);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(p.below(7), 7u);
}

TEST(DiagTest, FatalAndPanicTypes)
{
    EXPECT_THROW(fatal("user"), FatalError);
    EXPECT_THROW(panic("bug"), PanicError);
    try {
        panic("oops");
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("oops"),
                  std::string::npos);
    }
}

TEST(DiagTest, CheckInvariantPassesAndFails)
{
    EXPECT_NO_THROW(checkInvariant(true, "fine"));
    EXPECT_THROW(checkInvariant(false, "broken"), PanicError);
}

TEST(TableFormatTest, Numbers)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatPercent(0.0608), "6.08%");
    EXPECT_EQ(formatPercent(1.5, 0), "150%");
}

} // namespace
} // namespace ldx
