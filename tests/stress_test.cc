/**
 * @file
 * Stress tests: repeated threaded-driver dual executions (shaking out
 * races in the coupling protocol itself), queue-pressure runs, and
 * divergence detection in the execution-indexing baseline.
 */
#include <gtest/gtest.h>

#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "ldx/engine.h"
#include "taint/indexing.h"

namespace ldx {
namespace {

using core::DualEngine;
using core::EngineConfig;
using core::SourceSpec;

const ir::Module &
moduleFor(const std::string &source)
{
    static std::map<std::string, std::unique_ptr<ir::Module>> cache;
    auto it = cache.find(source);
    if (it == cache.end()) {
        auto m = lang::compileSource(source);
        instrument::CounterInstrumenter pass(*m);
        pass.run();
        it = cache.emplace(source, std::move(m)).first;
    }
    return *it->second;
}

TEST(StressTest, ThreadedDriverIsStableAcrossRepetitions)
{
    const char *src = R"(
int main() {
    char title[16];
    getenv("TITLE", title, 16);
    int total = 0;
    for (int i = 0; i < 20; i = i + 1) {
        int fd = open("/data.txt", 0);
        char b[4];
        total = total + read(fd, b, 2);
        close(fd);
        if (title[0] == 'S') { total = total + time() % 3; }
    }
    char out[24];
    itoa(total, out);
    print(out, strlen(out));
    return 0;
}
)";
    os::WorldSpec w;
    w.env["TITLE"] = "STAFF";
    w.files["/data.txt"] = "xy";
    const ir::Module &m = moduleFor(src);

    for (int rep = 0; rep < 10; ++rep) {
        EngineConfig cfg;
        cfg.threaded = true;
        cfg.wallClockCap = 20.0;
        DualEngine engine(m, w, cfg);
        auto res = engine.run();
        ASSERT_FALSE(res.deadlocked) << "rep " << rep;
        EXPECT_EQ(res.syscallDiffs, 0u) << "rep " << rep;
        EXPECT_FALSE(res.causality()) << "rep " << rep;
    }

    for (int rep = 0; rep < 10; ++rep) {
        EngineConfig cfg;
        cfg.threaded = true;
        cfg.wallClockCap = 20.0;
        cfg.sources = {SourceSpec::env("TITLE")};
        DualEngine engine(m, w, cfg);
        auto res = engine.run();
        ASSERT_FALSE(res.deadlocked) << "rep " << rep;
        EXPECT_TRUE(res.causality()) << "rep " << rep;
    }
}

TEST(StressTest, ManySyscallsExerciseQueuePressure)
{
    // Hundreds of aligned syscalls per run: the outcome queue must
    // recycle entries without unbounded growth or stale matches.
    const char *src = R"(
int main() {
    int total = 0;
    for (int i = 0; i < 400; i = i + 1) {
        total = total + time() % 5 + random() % 3;
    }
    char out[24];
    itoa(total, out);
    print(out, strlen(out));
    return 0;
}
)";
    EngineConfig cfg;
    cfg.wallClockCap = 30.0;
    DualEngine engine(moduleFor(src), {}, cfg);
    auto res = engine.run();
    EXPECT_FALSE(res.deadlocked);
    EXPECT_EQ(res.syscallDiffs, 0u);
    EXPECT_GE(res.alignedSyscalls, 800u);
    EXPECT_FALSE(res.causality());
}

TEST(StressTest, DeepRecursionUnderMutation)
{
    const char *src = R"(
int walk(int d) {
    if (d <= 0) { return 0; }
    if (d % 3 == 0) { time(); }
    return 1 + walk(d - 1);
}
int main() {
    char buf[8];
    getenv("DEPTH", buf, 8);
    int r = walk(atoi(buf));
    char out[8];
    itoa(r, out);
    print(out, strlen(out));
    return 0;
}
)";
    os::WorldSpec w;
    w.env["DEPTH"] = "50";
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("DEPTH", 1)}; // 50 -> 51
    cfg.wallClockCap = 20.0;
    DualEngine engine(moduleFor(src), w, cfg);
    auto res = engine.run();
    EXPECT_FALSE(res.deadlocked);
    EXPECT_TRUE(res.causality()); // depth reaches the sink
}

TEST(IndexingStressTest, DivergentInputsDetected)
{
    // The execution-indexing baseline compares per-instruction index
    // digests; identical worlds must agree.
    const char *src = R"(
int main() {
    char buf[8];
    getenv("B", buf, 8);
    int s = 0;
    if (buf[0] == 'x') { s = 1; } else { s = time() % 2; }
    printi(s);
    return 0;
}
)";
    auto module = lang::compileSource(src);
    os::WorldSpec w;
    w.env["B"] = "x";
    auto res = taint::runIndexedDualExecution(*module, w);
    EXPECT_TRUE(res.finished);
    EXPECT_FALSE(res.diverged);
    EXPECT_GT(res.instructions, 0u);
}

} // namespace
} // namespace ldx
