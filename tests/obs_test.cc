/**
 * @file
 * Tests for the obs layer: registry semantics (counters, gauges,
 * histograms, snapshots), trace sink output well-formedness, phase
 * timer nesting — and the load-bearing invariant that the metrics
 * registry totals agree exactly with the legacy DualResult counters.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "ldx/engine.h"
#include "obs/phase.h"
#include "obs/registry.h"
#include "obs/scope.h"
#include "obs/trace.h"

namespace ldx {
namespace {

using core::DualEngine;
using core::EngineConfig;
using core::SourceSpec;

// ----------------------------------------------------------- registry

TEST(RegistryTest, CounterIncrementAndLookup)
{
    obs::Registry reg;
    obs::Counter &c = reg.counter("a.b");
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    // Same name resolves to the same instrument.
    EXPECT_EQ(&reg.counter("a.b"), &c);
    EXPECT_EQ(reg.counter("a.b").value(), 42u);
}

TEST(RegistryTest, CounterIsThreadSafe)
{
    obs::Registry reg;
    obs::Counter &c = reg.counter("hot");
    constexpr int kThreads = 4;
    constexpr int kIncs = 50000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (int i = 0; i < kIncs; ++i)
                c.inc();
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(),
              static_cast<std::uint64_t>(kThreads) * kIncs);
}

TEST(RegistryTest, GaugeHoldsLastValue)
{
    obs::Registry reg;
    reg.gauge("g").set(1.5);
    reg.gauge("g").set(-2.25);
    EXPECT_DOUBLE_EQ(reg.gauge("g").value(), -2.25);
}

TEST(RegistryTest, HistogramBucketsAndOverflow)
{
    obs::Registry reg;
    obs::Histogram &h = reg.histogram("h", {1.0, 10.0, 100.0});
    h.observe(0.5);    // bucket 0: [0, 1)
    h.observe(5.0);    // bucket 1: [1, 10)
    h.observe(10.0);   // bucket 2: [10, 100) — bounds are lower-inclusive
    h.observe(1000.0); // overflow bucket
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 1015.5);
    EXPECT_EQ(h.numBuckets(), 4u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
}

TEST(RegistryTest, SnapshotAndAccessors)
{
    obs::Registry reg;
    reg.counter("c1").inc(7);
    reg.gauge("g1").set(3.5);
    reg.histogram("h1", {1.0, 2.0}).observe(1.5);
    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counterOr("c1"), 7u);
    EXPECT_EQ(snap.counterOr("missing", 99), 99u);
    EXPECT_DOUBLE_EQ(snap.gaugeOr("g1"), 3.5);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].count, 1u);

    std::string json = snap.toJson();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"c1\":7"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(RegistryTest, HistogramPercentileEstimate)
{
    obs::Registry reg;
    obs::Histogram &h = reg.histogram("p", {10.0, 20.0, 30.0});
    for (int i = 0; i < 100; ++i)
        h.observe(5.0); // all in the first bucket
    obs::MetricsSnapshot snap = reg.snapshot();
    double p50 = snap.histograms[0].percentile(50.0);
    EXPECT_GE(p50, 0.0);
    EXPECT_LE(p50, 10.0);
    // Everything below the last bound: p99 stays in bucket 0 too.
    EXPECT_LE(snap.histograms[0].percentile(99.0), 10.0);
}

// -------------------------------------------------------- trace sinks

obs::TraceRecord
makeRecord(const std::string &name, int lane)
{
    obs::TraceRecord rec;
    rec.name = name;
    rec.lane = lane;
    rec.tid = 1;
    rec.tsUs = 123;
    rec.numArgs = {{"sys", 7}};
    rec.strArgs = {{"detail", "a\"b\n"}};
    return rec;
}

TEST(TraceSinkTest, JsonlOneObjectPerLine)
{
    std::ostringstream os;
    obs::JsonlTraceSink sink(os);
    sink.setLaneName(obs::kMasterLane, "master");
    sink.emit(makeRecord("copy", obs::kMasterLane));
    sink.emit(makeRecord("execute", obs::kSlaveLane));
    sink.flush();

    std::istringstream in(os.str());
    std::string line;
    int lines = 0;
    while (std::getline(in, line)) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        ++lines;
    }
    EXPECT_EQ(lines, 3); // lane metadata line + two records
    // The quote and newline in strArgs must be escaped.
    EXPECT_NE(os.str().find("a\\\"b\\n"), std::string::npos);
}

TEST(TraceSinkTest, ChromeTraceIsOneJsonObject)
{
    std::ostringstream os;
    {
        obs::ChromeTraceSink sink(os);
        sink.setLaneName(obs::kMasterLane, "master");
        sink.setLaneName(obs::kSlaveLane, "slave");
        sink.emit(makeRecord("copy", obs::kMasterLane));
        obs::TraceRecord dur = makeRecord("master-run", obs::kMasterLane);
        dur.phase = 'X';
        dur.durUs = 55;
        sink.emit(dur);
        sink.flush();
    }
    std::string out = os.str();
    EXPECT_EQ(out.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(out.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(out.find("\"process_name\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(out.find("\"dur\":55"), std::string::npos);
    // flush() closes the array/object.
    std::string tail = out.substr(out.size() - 3);
    EXPECT_NE(tail.find("]}"), std::string::npos);
}

TEST(TraceSinkTest, MakeTraceSinkByName)
{
    std::ostringstream os;
    EXPECT_NE(obs::makeTraceSink("jsonl", os), nullptr);
    EXPECT_NE(obs::makeTraceSink("chrome", os), nullptr);
    EXPECT_EQ(obs::makeTraceSink("xml", os), nullptr);
}

TEST(TraceSinkTest, ScopeWithoutSinkDropsRecords)
{
    obs::Registry reg;
    obs::Scope scope(reg, nullptr);
    EXPECT_FALSE(scope.tracing());
    scope.emit(makeRecord("ignored", 0)); // must not crash
}

// -------------------------------------------------------- phase timer

TEST(PhaseTimerTest, NestingDepthsAndSamples)
{
    obs::PhaseTimer timer;
    timer.begin("outer");
    timer.begin("inner");
    timer.end();
    timer.end();
    timer.record("worker", 1, 0, 0.5);

    auto samples = timer.samples();
    ASSERT_EQ(samples.size(), 3u);
    // Completion order: inner closes first.
    EXPECT_EQ(samples[0].name, "inner");
    EXPECT_EQ(samples[0].depth, 1);
    EXPECT_EQ(samples[1].name, "outer");
    EXPECT_EQ(samples[1].depth, 0);
    EXPECT_GE(samples[1].seconds, samples[0].seconds);
    EXPECT_EQ(samples[2].name, "worker");
    EXPECT_DOUBLE_EQ(timer.total("worker"), 0.5);
}

TEST(PhaseTimerTest, TimeReturnsCallableResult)
{
    obs::PhaseTimer timer;
    int v = timer.time("calc", [] { return 41 + 1; });
    EXPECT_EQ(v, 42);
    timer.time("side-effect", [] {});
    EXPECT_EQ(timer.samples().size(), 2u);
}

TEST(PhaseTimerTest, MirrorsIntoSink)
{
    std::ostringstream os;
    obs::JsonlTraceSink sink(os);
    obs::PhaseTimer timer(&sink);
    timer.begin("parse");
    timer.end();
    EXPECT_NE(os.str().find("\"parse\""), std::string::npos);
    EXPECT_NE(os.str().find("\"X\""), std::string::npos);
}

// ----------------------------------------- engine metrics integration

const char *kLeakProgram = R"(
int main() {
    char secret[16];
    getenv("SECRET", secret, 16);
    int grade = 0;
    if (secret[0] == 'a') { grade = 1; } else { grade = 2; }
    char out[8];
    itoa(grade, out);
    print(out, strlen(out));
    int fd = open("/log.txt", 1);
    write(fd, out, strlen(out));
    close(fd);
    return 0;
}
)";

core::DualResult
dualRun(EngineConfig cfg)
{
    auto module = lang::compileSource(kLeakProgram);
    instrument::CounterInstrumenter pass(*module);
    pass.run();
    os::WorldSpec world;
    world.env["SECRET"] = "abc";
    cfg.wallClockCap = 20.0;
    DualEngine engine(*module, world, cfg);
    auto res = engine.run();
    EXPECT_FALSE(res.deadlocked);
    return res;
}

void
expectMetricsMatchResult(const core::DualResult &res)
{
    EXPECT_EQ(res.metrics.counterOr("dual.syscalls.aligned"),
              res.alignedSyscalls);
    EXPECT_EQ(res.metrics.counterOr("dual.syscalls.diff"),
              res.syscallDiffs);
    EXPECT_EQ(res.metrics.counterOr("dual.syscalls.slave_total"),
              res.totalSlaveSyscalls);
    EXPECT_EQ(res.metrics.counterOr("dual.barrier.pairings"),
              res.barrierPairings);
    EXPECT_EQ(res.metrics.counterOr("dual.findings"),
              res.findings.size());
    EXPECT_DOUBLE_EQ(res.metrics.gaugeOr("dual.wall_seconds"),
                     res.wallSeconds);
    // Side stats flow through too.
    EXPECT_GT(res.metrics.counterOr("vm.master.instructions"), 0u);
    EXPECT_GT(res.metrics.counterOr("vm.slave.instructions"), 0u);
    EXPECT_GT(res.metrics.counterOr("os.master.executes"), 0u);
}

TEST(EngineObsTest, MetricsMatchResultCleanRun)
{
    auto res = dualRun({});
    EXPECT_FALSE(res.causality());
    expectMetricsMatchResult(res);
    EXPECT_GT(res.metrics.counterOr("dual.align.copies"), 0u);
    EXPECT_EQ(res.metrics.counterOr("dual.syscalls.diff"), 0u);
}

TEST(EngineObsTest, MetricsMatchResultMutatedRun)
{
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("SECRET")};
    auto res = dualRun(cfg);
    EXPECT_TRUE(res.causality());
    expectMetricsMatchResult(res);
}

TEST(EngineObsTest, MetricsMatchResultThreadedRun)
{
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("SECRET")};
    cfg.threaded = true;
    auto res = dualRun(cfg);
    expectMetricsMatchResult(res);
}

TEST(EngineObsTest, PhasesCoverThePipeline)
{
    auto res = dualRun({});
    ASSERT_FALSE(res.phases.empty());
    bool saw_run = false;
    for (const auto &p : res.phases)
        saw_run |= p.name == "dual-run";
    EXPECT_TRUE(saw_run);
}

TEST(EngineObsTest, ExternalRegistryAccumulatesAcrossRuns)
{
    obs::Registry reg;
    EngineConfig cfg;
    cfg.registry = &reg;
    auto first = dualRun(cfg);
    std::uint64_t after_one =
        reg.counter("dual.syscalls.aligned").value();
    EXPECT_EQ(after_one, first.alignedSyscalls);
    dualRun(cfg);
    EXPECT_EQ(reg.counter("dual.syscalls.aligned").value(),
              2 * after_one);
}

TEST(EngineObsTest, ChromeTraceHasPerSideLanes)
{
    std::ostringstream os;
    obs::ChromeTraceSink sink(os);
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("SECRET")};
    cfg.traceSink = &sink;
    dualRun(cfg);
    sink.flush();
    std::string out = os.str();
    EXPECT_NE(out.find("\"pid\":0"), std::string::npos); // master lane
    EXPECT_NE(out.find("\"pid\":1"), std::string::npos); // slave lane
    EXPECT_NE(out.find("\"copy\""), std::string::npos);
}

} // namespace
} // namespace ldx
