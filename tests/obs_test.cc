/**
 * @file
 * Tests for the obs layer: registry semantics (counters, gauges,
 * histograms, snapshots), trace sink output well-formedness, phase
 * timer nesting — and the load-bearing invariant that the metrics
 * registry totals agree exactly with the legacy DualResult counters.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "ldx/engine.h"
#include "obs/exporter.h"
#include "obs/phase.h"
#include "obs/registry.h"
#include "obs/scope.h"
#include "obs/trace.h"

namespace ldx {
namespace {

using core::DualEngine;
using core::EngineConfig;
using core::SourceSpec;

// ----------------------------------------------------------- registry

TEST(RegistryTest, CounterIncrementAndLookup)
{
    obs::Registry reg;
    obs::Counter &c = reg.counter("a.b");
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    // Same name resolves to the same instrument.
    EXPECT_EQ(&reg.counter("a.b"), &c);
    EXPECT_EQ(reg.counter("a.b").value(), 42u);
}

TEST(RegistryTest, CounterIsThreadSafe)
{
    obs::Registry reg;
    obs::Counter &c = reg.counter("hot");
    constexpr int kThreads = 4;
    constexpr int kIncs = 50000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (int i = 0; i < kIncs; ++i)
                c.inc();
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(),
              static_cast<std::uint64_t>(kThreads) * kIncs);
}

TEST(RegistryTest, GaugeHoldsLastValue)
{
    obs::Registry reg;
    reg.gauge("g").set(1.5);
    reg.gauge("g").set(-2.25);
    EXPECT_DOUBLE_EQ(reg.gauge("g").value(), -2.25);
}

TEST(RegistryTest, HistogramBucketsAndOverflow)
{
    obs::Registry reg;
    obs::Histogram &h = reg.histogram("h", {1.0, 10.0, 100.0});
    h.observe(0.5);    // bucket 0: [0, 1)
    h.observe(5.0);    // bucket 1: [1, 10)
    h.observe(10.0);   // bucket 2: [10, 100) — bounds are lower-inclusive
    h.observe(1000.0); // overflow bucket
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 1015.5);
    EXPECT_EQ(h.numBuckets(), 4u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
}

TEST(RegistryTest, SnapshotAndAccessors)
{
    obs::Registry reg;
    reg.counter("c1").inc(7);
    reg.gauge("g1").set(3.5);
    reg.histogram("h1", {1.0, 2.0}).observe(1.5);
    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counterOr("c1"), 7u);
    EXPECT_EQ(snap.counterOr("missing", 99), 99u);
    EXPECT_DOUBLE_EQ(snap.gaugeOr("g1"), 3.5);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].count, 1u);

    std::string json = snap.toJson();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"c1\":7"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(RegistryTest, HistogramPercentileEstimate)
{
    obs::Registry reg;
    obs::Histogram &h = reg.histogram("p", {10.0, 20.0, 30.0});
    for (int i = 0; i < 100; ++i)
        h.observe(5.0); // all in the first bucket
    obs::MetricsSnapshot snap = reg.snapshot();
    double p50 = snap.histograms[0].percentile(50.0);
    EXPECT_GE(p50, 0.0);
    EXPECT_LE(p50, 10.0);
    // Everything below the last bound: p99 stays in bucket 0 too.
    EXPECT_LE(snap.histograms[0].percentile(99.0), 10.0);
}

TEST(RegistryTest, HistogramPercentileZeroSamplesPinsToZero)
{
    // An idle stream must report 0, never a stale bucket bound: the
    // exporter and profiler render percentiles unconditionally.
    obs::Registry reg;
    reg.histogram("empty", obs::latencySecondsBounds());
    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.histograms[0].percentile(50.0), 0.0);
    EXPECT_EQ(snap.histograms[0].percentile(99.0), 0.0);
    EXPECT_EQ(snap.histograms[0].percentile(0.0), 0.0);
    EXPECT_EQ(snap.histograms[0].percentile(100.0), 0.0);
}

TEST(RegistryTest, HistogramPercentileTornSnapshotRanksBucketTotal)
{
    // A snapshot can observe count > 0 with the bucket increment not
    // yet visible (the two RMWs are independent). Percentile must rank
    // against the bucket total, not the count header — a torn
    // snapshot reports 0, not the last bound (60s on the latency
    // grid).
    obs::HistogramSnapshot h;
    h.name = "torn";
    h.bounds = obs::latencySecondsBounds();
    h.counts.assign(h.bounds.size() + 1, 0);
    h.count = 1; // header ticked, buckets not yet
    h.sum = 0.05;
    EXPECT_EQ(h.percentile(50.0), 0.0);
    EXPECT_EQ(h.percentile(99.0), 0.0);
}

// -------------------------------------------------------- trace sinks

obs::TraceRecord
makeRecord(const std::string &name, int lane)
{
    obs::TraceRecord rec;
    rec.name = name;
    rec.lane = lane;
    rec.tid = 1;
    rec.tsUs = 123;
    rec.numArgs = {{"sys", 7}};
    rec.strArgs = {{"detail", "a\"b\n"}};
    return rec;
}

TEST(TraceSinkTest, JsonlOneObjectPerLine)
{
    std::ostringstream os;
    obs::JsonlTraceSink sink(os);
    sink.setLaneName(obs::kMasterLane, "master");
    sink.emit(makeRecord("copy", obs::kMasterLane));
    sink.emit(makeRecord("execute", obs::kSlaveLane));
    sink.flush();

    std::istringstream in(os.str());
    std::string line;
    int lines = 0;
    while (std::getline(in, line)) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        ++lines;
    }
    EXPECT_EQ(lines, 3); // lane metadata line + two records
    // The quote and newline in strArgs must be escaped.
    EXPECT_NE(os.str().find("a\\\"b\\n"), std::string::npos);
}

TEST(TraceSinkTest, ChromeTraceIsOneJsonObject)
{
    std::ostringstream os;
    {
        obs::ChromeTraceSink sink(os);
        sink.setLaneName(obs::kMasterLane, "master");
        sink.setLaneName(obs::kSlaveLane, "slave");
        sink.emit(makeRecord("copy", obs::kMasterLane));
        obs::TraceRecord dur = makeRecord("master-run", obs::kMasterLane);
        dur.phase = 'X';
        dur.durUs = 55;
        sink.emit(dur);
        sink.flush();
    }
    std::string out = os.str();
    EXPECT_EQ(out.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(out.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(out.find("\"process_name\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(out.find("\"dur\":55"), std::string::npos);
    // flush() closes the array/object.
    std::string tail = out.substr(out.size() - 3);
    EXPECT_NE(tail.find("]}"), std::string::npos);
}

TEST(TraceSinkTest, MakeTraceSinkByName)
{
    std::ostringstream os;
    EXPECT_NE(obs::makeTraceSink("jsonl", os), nullptr);
    EXPECT_NE(obs::makeTraceSink("chrome", os), nullptr);
    EXPECT_EQ(obs::makeTraceSink("xml", os), nullptr);
}

TEST(TraceSinkTest, ScopeWithoutSinkDropsRecords)
{
    obs::Registry reg;
    obs::Scope scope(reg, nullptr);
    EXPECT_FALSE(scope.tracing());
    scope.emit(makeRecord("ignored", 0)); // must not crash
}

// -------------------------------------------------------- phase timer

TEST(PhaseTimerTest, NestingDepthsAndSamples)
{
    obs::PhaseTimer timer;
    timer.begin("outer");
    timer.begin("inner");
    timer.end();
    timer.end();
    timer.record("worker", 1, 0, 0.5);

    auto samples = timer.samples();
    ASSERT_EQ(samples.size(), 3u);
    // Completion order: inner closes first.
    EXPECT_EQ(samples[0].name, "inner");
    EXPECT_EQ(samples[0].depth, 1);
    EXPECT_EQ(samples[1].name, "outer");
    EXPECT_EQ(samples[1].depth, 0);
    EXPECT_GE(samples[1].seconds, samples[0].seconds);
    EXPECT_EQ(samples[2].name, "worker");
    EXPECT_DOUBLE_EQ(timer.total("worker"), 0.5);
}

TEST(PhaseTimerTest, TimeReturnsCallableResult)
{
    obs::PhaseTimer timer;
    int v = timer.time("calc", [] { return 41 + 1; });
    EXPECT_EQ(v, 42);
    timer.time("side-effect", [] {});
    EXPECT_EQ(timer.samples().size(), 2u);
}

TEST(PhaseTimerTest, MirrorsIntoSink)
{
    std::ostringstream os;
    obs::JsonlTraceSink sink(os);
    obs::PhaseTimer timer(&sink);
    timer.begin("parse");
    timer.end();
    EXPECT_NE(os.str().find("\"parse\""), std::string::npos);
    EXPECT_NE(os.str().find("\"X\""), std::string::npos);
}

// ----------------------------------------- engine metrics integration

const char *kLeakProgram = R"(
int main() {
    char secret[16];
    getenv("SECRET", secret, 16);
    int grade = 0;
    if (secret[0] == 'a') { grade = 1; } else { grade = 2; }
    char out[8];
    itoa(grade, out);
    print(out, strlen(out));
    int fd = open("/log.txt", 1);
    write(fd, out, strlen(out));
    close(fd);
    return 0;
}
)";

core::DualResult
dualRun(EngineConfig cfg)
{
    auto module = lang::compileSource(kLeakProgram);
    instrument::CounterInstrumenter pass(*module);
    pass.run();
    os::WorldSpec world;
    world.env["SECRET"] = "abc";
    cfg.wallClockCap = 20.0;
    DualEngine engine(*module, world, cfg);
    auto res = engine.run();
    EXPECT_FALSE(res.deadlocked);
    return res;
}

void
expectMetricsMatchResult(const core::DualResult &res)
{
    EXPECT_EQ(res.metrics.counterOr("dual.syscalls.aligned"),
              res.alignedSyscalls);
    EXPECT_EQ(res.metrics.counterOr("dual.syscalls.diff"),
              res.syscallDiffs);
    EXPECT_EQ(res.metrics.counterOr("dual.syscalls.slave_total"),
              res.totalSlaveSyscalls);
    EXPECT_EQ(res.metrics.counterOr("dual.barrier.pairings"),
              res.barrierPairings);
    EXPECT_EQ(res.metrics.counterOr("dual.findings"),
              res.findings.size());
    EXPECT_DOUBLE_EQ(res.metrics.gaugeOr("dual.wall_seconds"),
                     res.wallSeconds);
    // Side stats flow through too.
    EXPECT_GT(res.metrics.counterOr("vm.master.instructions"), 0u);
    EXPECT_GT(res.metrics.counterOr("vm.slave.instructions"), 0u);
    EXPECT_GT(res.metrics.counterOr("os.master.executes"), 0u);
}

TEST(EngineObsTest, MetricsMatchResultCleanRun)
{
    auto res = dualRun({});
    EXPECT_FALSE(res.causality());
    expectMetricsMatchResult(res);
    EXPECT_GT(res.metrics.counterOr("dual.align.copies"), 0u);
    EXPECT_EQ(res.metrics.counterOr("dual.syscalls.diff"), 0u);
}

TEST(EngineObsTest, MetricsMatchResultMutatedRun)
{
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("SECRET")};
    auto res = dualRun(cfg);
    EXPECT_TRUE(res.causality());
    expectMetricsMatchResult(res);
}

TEST(EngineObsTest, MetricsMatchResultThreadedRun)
{
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("SECRET")};
    cfg.threaded = true;
    auto res = dualRun(cfg);
    expectMetricsMatchResult(res);
}

TEST(EngineObsTest, PhasesCoverThePipeline)
{
    auto res = dualRun({});
    ASSERT_FALSE(res.phases.empty());
    bool saw_run = false;
    for (const auto &p : res.phases)
        saw_run |= p.name == "dual-run";
    EXPECT_TRUE(saw_run);
}

TEST(EngineObsTest, ExternalRegistryAccumulatesAcrossRuns)
{
    obs::Registry reg;
    EngineConfig cfg;
    cfg.registry = &reg;
    auto first = dualRun(cfg);
    std::uint64_t after_one =
        reg.counter("dual.syscalls.aligned").value();
    EXPECT_EQ(after_one, first.alignedSyscalls);
    dualRun(cfg);
    EXPECT_EQ(reg.counter("dual.syscalls.aligned").value(),
              2 * after_one);
}

TEST(EngineObsTest, ChromeTraceHasPerSideLanes)
{
    std::ostringstream os;
    obs::ChromeTraceSink sink(os);
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("SECRET")};
    cfg.traceSink = &sink;
    dualRun(cfg);
    sink.flush();
    std::string out = os.str();
    EXPECT_NE(out.find("\"pid\":0"), std::string::npos); // master lane
    EXPECT_NE(out.find("\"pid\":1"), std::string::npos); // slave lane
    EXPECT_NE(out.find("\"copy\""), std::string::npos);
}

// ------------------------------------------- flight-recorder rings

TEST(FlightRecorderTest, RecordsBelowCapacityWithoutDrops)
{
    obs::FlightRecorder rec(16);
    for (int i = 0; i < 10; ++i) {
        obs::RecEvent e;
        e.kind = obs::RecKind::SyscallExecute;
        e.cnt = i;
        rec.record(0, e);
    }
    EXPECT_EQ(rec.total(0), 10u);
    EXPECT_EQ(rec.dropped(0), 0u);
    EXPECT_EQ(rec.total(1), 0u); // sides are independent
    auto snap = rec.snapshot(0);
    ASSERT_EQ(snap.size(), 10u);
    for (std::size_t i = 0; i < snap.size(); ++i) {
        EXPECT_EQ(snap[i].cnt, static_cast<std::int64_t>(i));
        EXPECT_EQ(snap[i].seq, i);
        EXPECT_EQ(snap[i].side, 0);
    }
}

TEST(FlightRecorderTest, WraparoundDropsOldestFirst)
{
    constexpr std::size_t kCap = 8;
    constexpr std::uint64_t kTotal = 21;
    obs::FlightRecorder rec(kCap);
    for (std::uint64_t i = 0; i < kTotal; ++i) {
        obs::RecEvent e;
        e.kind = obs::RecKind::SyscallCopy;
        e.cnt = static_cast<std::int64_t>(i);
        rec.record(1, e);
    }
    // Exact drop accounting: everything past the capacity is lost.
    EXPECT_EQ(rec.total(1), kTotal);
    EXPECT_EQ(rec.dropped(1), kTotal - kCap);
    auto snap = rec.snapshot(1);
    ASSERT_EQ(snap.size(), kCap);
    // Survivors are the newest kCap events, returned oldest-first.
    for (std::size_t i = 0; i < kCap; ++i) {
        EXPECT_EQ(snap[i].seq, kTotal - kCap + i);
        EXPECT_EQ(snap[i].cnt,
                  static_cast<std::int64_t>(kTotal - kCap + i));
    }
}

TEST(FlightRecorderTest, SequenceAndTimestampAreMonotonic)
{
    obs::FlightRecorder rec(4);
    for (int i = 0; i < 9; ++i)
        rec.record(0, obs::RecEvent{});
    auto snap = rec.snapshot(0);
    ASSERT_EQ(snap.size(), 4u);
    for (std::size_t i = 1; i < snap.size(); ++i) {
        EXPECT_EQ(snap[i].seq, snap[i - 1].seq + 1);
        EXPECT_GE(snap[i].tsUs, snap[i - 1].tsUs);
    }
}

TEST(FlightRecorderTest, ZeroCapacityClampsToOne)
{
    obs::FlightRecorder rec(0);
    EXPECT_EQ(rec.capacity(), 1u);
    rec.record(0, obs::RecEvent{});
    rec.record(0, obs::RecEvent{});
    EXPECT_EQ(rec.total(0), 2u);
    EXPECT_EQ(rec.dropped(0), 1u);
    EXPECT_EQ(rec.snapshot(0).size(), 1u);
}

TEST(FlightRecorderTest, DivergentKindClassification)
{
    EXPECT_TRUE(obs::recKindDivergent(obs::RecKind::SyscallDecouple));
    EXPECT_TRUE(obs::recKindDivergent(obs::RecKind::SinkDiff));
    EXPECT_TRUE(obs::recKindDivergent(obs::RecKind::SinkVanish));
    EXPECT_TRUE(obs::recKindDivergent(obs::RecKind::BarrierSkip));
    EXPECT_TRUE(obs::recKindDivergent(obs::RecKind::LockDiverge));
    EXPECT_TRUE(obs::recKindDivergent(obs::RecKind::Trap));
    EXPECT_TRUE(obs::recKindDivergent(obs::RecKind::WatchdogExpire));
    EXPECT_FALSE(obs::recKindDivergent(obs::RecKind::SyscallExecute));
    EXPECT_FALSE(obs::recKindDivergent(obs::RecKind::SyscallCopy));
    EXPECT_FALSE(obs::recKindDivergent(obs::RecKind::SinkAligned));
    EXPECT_FALSE(obs::recKindDivergent(obs::RecKind::Mutation));
    EXPECT_FALSE(obs::recKindDivergent(obs::RecKind::Block));
}

TEST(FlightRecorderTest, DualRunPublishesDropAccounting)
{
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("SECRET")};
    cfg.recorderCapacity = 2; // force overflow on any real run
    auto res = dualRun(cfg);
    ASSERT_TRUE(res.divergence.present);
    EXPECT_GT(res.metrics.counterOr("recorder.dropped"), 0u);
    EXPECT_EQ(res.metrics.counterOr("recorder.dropped"),
              res.divergence.droppedEvents[0] +
                  res.divergence.droppedEvents[1]);
    EXPECT_EQ(res.divergence.events[0].size(), 2u);
    EXPECT_EQ(res.divergence.events[1].size(), 2u);
}

// -------------------------------------- --metrics=json stable schema

/** `"key":` present with a value of the expected JSON type. */
void
expectJsonKey(const std::string &json, const std::string &key,
              const char *type)
{
    std::size_t pos = json.find("\"" + key + "\":");
    ASSERT_NE(pos, std::string::npos) << key << " missing\n" << json;
    char c = json[pos + key.size() + 3];
    std::string t = type;
    if (t == "bool")
        EXPECT_TRUE(c == 't' || c == 'f') << key;
    else if (t == "number")
        EXPECT_TRUE((c >= '0' && c <= '9') || c == '-') << key;
    else if (t == "string")
        EXPECT_EQ(c, '"') << key;
    else if (t == "array")
        EXPECT_EQ(c, '[') << key;
    else if (t == "object")
        EXPECT_EQ(c, '{') << key;
}

TEST(ResultJsonTest, StableTopLevelSchema)
{
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("SECRET")};
    auto res = dualRun(cfg);
    std::string json = core::resultJson(res, res.phases);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    expectJsonKey(json, "causality", "bool");
    expectJsonKey(json, "wall_seconds", "number");
    expectJsonKey(json, "findings", "array");
    expectJsonKey(json, "divergence", "object");
    expectJsonKey(json, "present", "bool");
    expectJsonKey(json, "outcome", "string");
    expectJsonKey(json, "summary", "string");
    expectJsonKey(json, "dropped", "number");
    expectJsonKey(json, "phases", "array");
    expectJsonKey(json, "metrics", "object");
}

TEST(ResultJsonTest, SchemaHoldsOnCleanRunToo)
{
    // No mutated sources: divergence.present=false, but every key is
    // still there — consumers never need to branch on key presence.
    auto res = dualRun({});
    std::string json = core::resultJson(res, res.phases);
    expectJsonKey(json, "causality", "bool");
    expectJsonKey(json, "divergence", "object");
    expectJsonKey(json, "present", "bool");
    expectJsonKey(json, "outcome", "string");
    expectJsonKey(json, "summary", "string");
    expectJsonKey(json, "dropped", "number");
    EXPECT_NE(json.find("\"present\":false"), std::string::npos);
}

TEST(ResultJsonTest, PhasesJsonShapesEachSample)
{
    obs::PhaseSample s;
    s.name = "dual-run";
    s.depth = 1;
    s.startUs = 42;
    s.seconds = 0.25;
    std::string json = core::phasesJson({s});
    EXPECT_NE(json.find("\"name\":\"dual-run\""), std::string::npos);
    EXPECT_NE(json.find("\"depth\":1"), std::string::npos);
    EXPECT_NE(json.find("\"start_us\":42"), std::string::npos);
    EXPECT_NE(json.find("\"seconds\":0.25"), std::string::npos);
}

// ----------------------------------------------------------- exporter

TEST(PrometheusTest, RendersAllInstrumentKinds)
{
    obs::Registry reg;
    reg.counter("campaign.cache.hits").inc(7);
    reg.gauge("campaign.sched.utilization").set(0.5);
    obs::Histogram &h =
        reg.histogram("campaign.query_seconds", {1.0, 10.0});
    h.observe(0.5);
    h.observe(0.5);
    h.observe(5.0);

    std::string text = obs::renderPrometheus(reg.snapshot());
    // Names are sanitized ([a-zA-Z0-9_]) and ldx_-prefixed, with one
    // TYPE line per metric.
    EXPECT_NE(text.find("# TYPE ldx_campaign_cache_hits counter\n"
                        "ldx_campaign_cache_hits 7\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE ldx_campaign_sched_utilization gauge"),
              std::string::npos);
    EXPECT_NE(text.find("ldx_campaign_sched_utilization 0.5"),
              std::string::npos);
    // Histogram buckets are cumulative and end in +Inf.
    EXPECT_NE(
        text.find("ldx_campaign_query_seconds_bucket{le=\"1\"} 2"),
        std::string::npos);
    EXPECT_NE(
        text.find("ldx_campaign_query_seconds_bucket{le=\"10\"} 3"),
        std::string::npos);
    EXPECT_NE(
        text.find("ldx_campaign_query_seconds_bucket{le=\"+Inf\"} 3"),
        std::string::npos);
    EXPECT_NE(text.find("ldx_campaign_query_seconds_sum 6"),
              std::string::npos);
    EXPECT_NE(text.find("ldx_campaign_query_seconds_count 3"),
              std::string::npos);
    EXPECT_EQ(text.find("campaign."), std::string::npos);
}

TEST(ExporterTest, WritesJsonlSeriesAndAtomicExposition)
{
    std::string dir = std::filesystem::temp_directory_path() /
                      "ldx_obs_exporter";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    std::string jsonl = dir + "/m.jsonl";
    std::string prom = dir + "/m.prom";

    obs::Registry reg;
    reg.counter("ticks").inc(3);

    obs::ExporterConfig cfg;
    cfg.jsonlPath = jsonl;
    cfg.promPath = prom;
    cfg.intervalMs = 2;
    {
        obs::Exporter exporter(reg, cfg);
        ASSERT_TRUE(exporter.start());
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        reg.counter("ticks").inc(39);
        exporter.stop();
        // Idempotent: a second stop (and the destructor) is a no-op.
        exporter.stop();
        EXPECT_GE(exporter.samples(), 1u);
    }

    // Every line is one self-contained snapshot; the last one carries
    // the final registry state (the stop() sample).
    std::ifstream in(jsonl);
    std::string line, last;
    std::uint64_t lines = 0;
    while (std::getline(in, line))
        if (!line.empty()) {
            last = line;
            ++lines;
        }
    EXPECT_GE(lines, 1u);
    EXPECT_EQ(last.find("{\"ts_us\":"), 0u);
    EXPECT_NE(last.find("\"seq\":"), std::string::npos);
    EXPECT_NE(last.find("\"ticks\":42"), std::string::npos);

    // The exposition file holds the final state, with no leftover
    // temp file from the atomic-replace protocol.
    std::ifstream pin(prom);
    std::stringstream pss;
    pss << pin.rdbuf();
    EXPECT_NE(pss.str().find("ldx_ticks 42"), std::string::npos);
    EXPECT_FALSE(std::filesystem::exists(prom + ".tmp"));
    std::filesystem::remove_all(dir);
}

TEST(ExporterTest, UnwritablePathFailsAtStart)
{
    obs::Registry reg;
    obs::ExporterConfig cfg;
    cfg.jsonlPath = "/nonexistent-dir/metrics.jsonl";
    obs::Exporter exporter(reg, cfg);
    EXPECT_FALSE(exporter.start());
    EXPECT_NE(exporter.error().find("cannot write"),
              std::string::npos);
    exporter.stop(); // inert: never started
    EXPECT_EQ(exporter.samples(), 0u);
}

} // namespace
} // namespace ldx
