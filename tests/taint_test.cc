/**
 * @file
 * Tests of the taint-tracking baselines: data-dependence propagation,
 * the LIBDFT library-model gap, the control-dependence blind spot
 * (the Table 3 story), the control-augmented ablation, TightLip trace
 * comparison, and the execution-indexing baseline.
 */
#include <gtest/gtest.h>

#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "ldx/engine.h"
#include "taint/indexing.h"
#include "taint/tightlip.h"
#include "taint/tracker.h"

namespace ldx {
namespace {

using core::MutationStrategy;
using core::SourceSpec;
using taint::TaintPolicy;
using taint::TaintRunOptions;
using taint::runTaintAnalysis;

const ir::Module &
moduleFor(const std::string &source)
{
    static std::map<std::string, std::unique_ptr<ir::Module>> cache;
    auto it = cache.find(source);
    if (it == cache.end())
        it = cache.emplace(source, lang::compileSource(source)).first;
    return *it->second;
}

taint::TaintRunResult
taintRun(const std::string &src, const os::WorldSpec &world,
         std::vector<SourceSpec> sources, TaintPolicy policy,
         bool ret_sinks = false, bool alloc_sinks = false)
{
    TaintRunOptions opts;
    opts.policy = policy;
    opts.sources = std::move(sources);
    opts.retTokenSinks = ret_sinks;
    opts.allocSizeSinks = alloc_sinks;
    return runTaintAnalysis(moduleFor(src), world, opts);
}

// ---------------------------------------------------------------------
// Data-dependence propagation basics (Fig. 1 (a)).
// ---------------------------------------------------------------------

TEST(TaintTest, DirectDataFlowDetected)
{
    const char *src = R"(
int main() {
    char secret[32];
    getenv("SECRET", secret, 32);
    char out[32];
    memcpy(out, secret, 8);
    print(out, 8);
    return 0;
}
)";
    os::WorldSpec w;
    w.env["SECRET"] = "password";
    auto r = taintRun(src, w, {SourceSpec::env("SECRET")},
                      TaintPolicy::taintgrind());
    EXPECT_EQ(r.taintedSinks.size(), 1u);
    EXPECT_EQ(r.totalSinks, 1u);
}

TEST(TaintTest, UntaintedOutputClean)
{
    const char *src = R"(
int main() {
    char secret[32];
    getenv("SECRET", secret, 32);
    print("public", 6);
    return 0;
}
)";
    os::WorldSpec w;
    w.env["SECRET"] = "password";
    auto r = taintRun(src, w, {SourceSpec::env("SECRET")},
                      TaintPolicy::taintgrind());
    EXPECT_TRUE(r.taintedSinks.empty());
    EXPECT_EQ(r.totalSinks, 1u);
}

TEST(TaintTest, ArithmeticPropagates)
{
    const char *src = R"(
int main() {
    char buf[16];
    getenv("N", buf, 16);
    int n = buf[0] - '0';
    int derived = n * 31 + 7;
    char out[24];
    out[0] = derived % 10 + '0';
    print(out, 1);
    return 0;
}
)";
    os::WorldSpec w;
    w.env["N"] = "4";
    auto r = taintRun(src, w, {SourceSpec::env("N")},
                      TaintPolicy::taintgrind());
    EXPECT_EQ(r.taintedSinks.size(), 1u);
}

TEST(TaintTest, TaintFlowsThroughCallsAndReturns)
{
    const char *src = R"(
int launder(int x) { int y = x + 1; return y; }

int main() {
    char buf[16];
    getenv("N", buf, 16);
    int v = launder(launder(buf[0]));
    char out[4];
    out[0] = v % 10 + '0';
    print(out, 1);
    return 0;
}
)";
    os::WorldSpec w;
    w.env["N"] = "5";
    auto r = taintRun(src, w, {SourceSpec::env("N")},
                      TaintPolicy::taintgrind());
    EXPECT_EQ(r.taintedSinks.size(), 1u);
}

TEST(TaintTest, FileSourceTaintsReadBytes)
{
    const char *src = R"(
int main() {
    char buf[32];
    int fd = open("/secret.txt", 0);
    read(fd, buf, 8);
    int out = open("/leak.txt", 1);
    write(out, buf, 8);
    return 0;
}
)";
    os::WorldSpec w;
    w.files["/secret.txt"] = "topsecret";
    auto r = taintRun(src, w, {SourceSpec::file("/secret.txt")},
                      TaintPolicy::taintgrind());
    EXPECT_EQ(r.taintedSinks.size(), 1u);
}

// ---------------------------------------------------------------------
// Control-dependence blindness: the Table 3 gap versus LDX.
// ---------------------------------------------------------------------

const char *kControlLeak = R"(
int main() {
    char buf[16];
    getenv("SECRET", buf, 16);
    int x = 0;
    if (buf[0] == 'a') { x = 1; } else { x = 2; }
    char out[4];
    out[0] = x + '0';
    print(out, 1);
    return 0;
}
)";

TEST(TaintTest, DataDepTrackersMissControlLeak)
{
    os::WorldSpec w;
    w.env["SECRET"] = "abc";
    auto tg = taintRun(kControlLeak, w, {SourceSpec::env("SECRET")},
                       TaintPolicy::taintgrind());
    auto ld = taintRun(kControlLeak, w, {SourceSpec::env("SECRET")},
                       TaintPolicy::libdft());
    EXPECT_TRUE(tg.taintedSinks.empty());
    EXPECT_TRUE(ld.taintedSinks.empty());
}

TEST(TaintTest, LdxDetectsTheSameControlLeak)
{
    os::WorldSpec w;
    w.env["SECRET"] = "abc";
    auto module = lang::compileSource(kControlLeak);
    instrument::CounterInstrumenter pass(*module);
    pass.run();
    core::EngineConfig cfg;
    cfg.sources = {SourceSpec::env("SECRET")};
    cfg.wallClockCap = 20.0;
    core::DualEngine engine(*module, w, cfg);
    auto res = engine.run();
    EXPECT_TRUE(res.causality());
}

TEST(TaintTest, ControlAugmentedTrackerCatchesControlLeak)
{
    os::WorldSpec w;
    w.env["SECRET"] = "abc";
    auto r = taintRun(kControlLeak, w, {SourceSpec::env("SECRET")},
                      TaintPolicy::controlAugmented());
    EXPECT_EQ(r.taintedSinks.size(), 1u);
}

TEST(TaintTest, ControlAugmentedOverTaints)
{
    // Weak causality (Fig. 1 (c)): the control tracker flags the sink
    // even though the attacker learns almost nothing — the
    // over-tainting the paper attributes to control-dep tracking.
    const char *src = R"(
int main() {
    char buf[16];
    getenv("S", buf, 16);
    int s = atoi(buf);
    int x = 0;
    if (s > 10) { x = 1; }
    char out[4];
    out[0] = x + '0';
    print(out, 1);
    return 0;
}
)";
    os::WorldSpec w;
    w.env["S"] = "50";
    auto r = taintRun(src, w, {SourceSpec::env("S")},
                      TaintPolicy::controlAugmented());
    EXPECT_EQ(r.taintedSinks.size(), 1u) << "expected over-taint";
}

// ---------------------------------------------------------------------
// LIBDFT's library-model gap: its tainted sinks are a subset of
// TaintGrind's (Table 3 observation 2).
// ---------------------------------------------------------------------

TEST(TaintTest, LibdftMissesConversionRoutines)
{
    const char *src = R"(
int main() {
    char buf[16];
    getenv("N", buf, 16);
    int n = atoi(buf);        // libdft drops taint here
    char out[24];
    itoa(n * 2, out);
    print(out, strlen(out));
    return 0;
}
)";
    os::WorldSpec w;
    w.env["N"] = "21";
    auto tg = taintRun(src, w, {SourceSpec::env("N")},
                       TaintPolicy::taintgrind());
    auto ld = taintRun(src, w, {SourceSpec::env("N")},
                       TaintPolicy::libdft());
    EXPECT_EQ(tg.taintedSinks.size(), 1u);
    EXPECT_TRUE(ld.taintedSinks.empty());
}

TEST(TaintTest, LibdftStillTracksBlockCopies)
{
    const char *src = R"(
int main() {
    char secret[32];
    getenv("SECRET", secret, 32);
    char tmp[32];
    strcpy(tmp, secret);
    print(tmp, 4);
    return 0;
}
)";
    os::WorldSpec w;
    w.env["SECRET"] = "data";
    auto ld = taintRun(src, w, {SourceSpec::env("SECRET")},
                       TaintPolicy::libdft());
    EXPECT_EQ(ld.taintedSinks.size(), 1u);
}

// ---------------------------------------------------------------------
// Vulnerable-program sinks: return tokens and malloc arguments.
// ---------------------------------------------------------------------

TEST(TaintTest, StackSmashTaintsReturnToken)
{
    const char *src = R"(
int handle(char *req) {
    char buf[8];
    strcpy(buf, req);
    return 0;
}

int main() {
    char req[64];
    getenv("REQ", req, 64);
    handle(req);
    return 0;
}
)";
    os::WorldSpec w;
    w.env["REQ"] = std::string(32, 'A');
    auto r = taintRun(src, w, {SourceSpec::env("REQ")},
                      TaintPolicy::taintgrind(), /*ret=*/true);
    // The run traps on the corrupted token, but the sink event fires
    // first and must be tainted.
    bool ret_token_tainted = false;
    for (const auto &evt : r.taintedSinks) {
        if (evt.kind == taint::TaintedSinkEvent::Kind::RetToken)
            ret_token_tainted = true;
    }
    EXPECT_TRUE(ret_token_tainted);
}

TEST(TaintTest, AllocSizeTaintDetected)
{
    const char *src = R"(
int main() {
    char buf[16];
    getenv("LEN", buf, 16);
    int n = buf[0] - '0';
    char *p = malloc(n * 8);
    p[0] = 1;
    return 0;
}
)";
    os::WorldSpec w;
    w.env["LEN"] = "4";
    auto r = taintRun(src, w, {SourceSpec::env("LEN")},
                      TaintPolicy::taintgrind(), false, /*alloc=*/true);
    bool alloc_tainted = false;
    for (const auto &evt : r.taintedSinks) {
        if (evt.kind == taint::TaintedSinkEvent::Kind::AllocSize)
            alloc_tainted = true;
    }
    EXPECT_TRUE(alloc_tainted);
}

TEST(TaintTest, MultipleSourcesGetDistinctLabels)
{
    const char *src = R"(
int main() {
    char a[16];
    char b[16];
    getenv("A", a, 16);
    getenv("B", b, 16);
    print(a, 1);
    print(b, 1);
    return 0;
}
)";
    os::WorldSpec w;
    w.env["A"] = "x";
    w.env["B"] = "y";
    auto r = taintRun(src, w,
                      {SourceSpec::env("A"), SourceSpec::env("B")},
                      TaintPolicy::taintgrind());
    ASSERT_EQ(r.taintedSinks.size(), 2u);
    EXPECT_EQ(r.taintedSinks[0].labels, 1u);
    EXPECT_EQ(r.taintedSinks[1].labels, 2u);
}

// ---------------------------------------------------------------------
// TightLip.
// ---------------------------------------------------------------------

TEST(TightLipTest, IdenticalTracesMatch)
{
    const char *src = R"(
int main() {
    print("abc", 3);
    print("def", 3);
    return 0;
}
)";
    auto res = taint::runTightLip(moduleFor(src), {}, {});
    EXPECT_FALSE(res.leakReported);
    EXPECT_EQ(res.matchedPrefix, 2u);
}

TEST(TightLipTest, PayloadLeakReported)
{
    const char *src = R"(
int main() {
    char buf[16];
    getenv("SECRET", buf, 16);
    print(buf, 3);
    return 0;
}
)";
    os::WorldSpec w;
    w.env["SECRET"] = "aaa";
    auto res = taint::runTightLip(moduleFor(src), w,
                                  {SourceSpec::env("SECRET")});
    EXPECT_TRUE(res.leakReported);
    EXPECT_TRUE(res.payloadDiffered);
}

TEST(TightLipTest, FailsOnNonLeakingPathDifference)
{
    // The mutation changes the syscall stream substantially but the
    // final output is unchanged. TightLip cannot realign beyond its
    // window and (falsely) reports; LDX handles this case (Table 2).
    const char *src = R"(
int main() {
    char mode[8];
    getenv("MODE", mode, 8);
    if (mode[0] == 'v') {
        for (int i = 0; i < 20; i = i + 1) {
            int fd = open("/scratch.txt", 2);
            write(fd, "x", 1);
            close(fd);
        }
    }
    print("constant", 8);
    return 0;
}
)";
    os::WorldSpec w;
    w.env["MODE"] = "u"; // doppelganger sees 'v'
    auto res = taint::runTightLip(moduleFor(src), w,
                                  {SourceSpec::env("MODE")},
                                  MutationStrategy::OffByOne,
                                  /*window=*/8);
    EXPECT_TRUE(res.leakReported);
    EXPECT_TRUE(res.alignmentFailed);

    // LDX on the same program and mutation: no causality.
    auto module = lang::compileSource(src);
    instrument::CounterInstrumenter pass(*module);
    pass.run();
    core::EngineConfig cfg;
    cfg.sources = {SourceSpec::env("MODE")};
    cfg.sinks.file = false;
    cfg.wallClockCap = 20.0;
    core::DualEngine engine(*module, w, cfg);
    auto ldx_res = engine.run();
    EXPECT_FALSE(ldx_res.causality());
}

TEST(TightLipTest, SmallDifferenceWithinWindowTolerated)
{
    const char *src = R"(
int main() {
    char mode[8];
    getenv("MODE", mode, 8);
    if (mode[0] == 'v') { time(); }
    print("constant", 8);
    return 0;
}
)";
    os::WorldSpec w;
    w.env["MODE"] = "u";
    auto res = taint::runTightLip(moduleFor(src), w,
                                  {SourceSpec::env("MODE")});
    EXPECT_FALSE(res.leakReported);
    EXPECT_GT(res.syscallDiffs, 0u);
}

// ---------------------------------------------------------------------
// Execution-indexing baseline.
// ---------------------------------------------------------------------

TEST(IndexingTest, LockstepRunsToCompletionWithoutDivergence)
{
    const char *src = R"(
int main() {
    int s = 0;
    for (int i = 0; i < 100; i = i + 1) { s = s + i; }
    char out[24];
    itoa(s, out);
    print(out, strlen(out));
    return 0;
}
)";
    auto res = taint::runIndexedDualExecution(moduleFor(src), {});
    EXPECT_TRUE(res.finished);
    EXPECT_FALSE(res.diverged);
    EXPECT_GT(res.indexComparisons, 100u);
}

} // namespace
} // namespace ldx
