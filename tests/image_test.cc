/**
 * @file
 * Bytecode-image tests: serialize/load round trips must reproduce the
 * predecoded streams bit for bit (including the superinstruction
 * marks), runs from an image-loaded program must retire identical
 * state to freshly compiled ones, and any corrupted/foreign image
 * must parse to a clean "fall back to the front end" miss — never a
 * crash or garbage execution.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "fuzz/generator.h"
#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "ldx/engine.h"
#include "obs/recorder.h"
#include "os/kernel.h"
#include "vm/image.h"
#include "vm/machine.h"
#include "workloads/workloads.h"

namespace ldx {
namespace {

using workloads::Workload;

/** Bit-level DecodedInstr equality; src is compared by coordinates. */
void
expectSameInstr(const vm::DecodedInstr &a, const vm::DecodedInstr &b,
                const std::string &what)
{
    EXPECT_EQ(a.op, b.op) << what;
    EXPECT_EQ(a.flags, b.flags) << what;
    EXPECT_EQ(a.size, b.size) << what;
    EXPECT_EQ(a.xop, b.xop) << what;
    EXPECT_EQ(a.dst, b.dst) << what;
    EXPECT_EQ(a.a, b.a) << what;
    EXPECT_EQ(a.b, b.b) << what;
    EXPECT_EQ(a.imm, b.imm) << what;
    EXPECT_EQ(a.target0, b.target0) << what;
    EXPECT_EQ(a.target1, b.target1) << what;
    EXPECT_EQ(a.block, b.block) << what;
    EXPECT_EQ(a.ip, b.ip) << what;
    EXPECT_EQ(a.histIdx, b.histIdx) << what;
    EXPECT_EQ(a.runLen, b.runLen) << what;
}

/** Round-trip @p module and compare every decoded stream. */
void
expectRoundTrip(const ir::Module &module, bool instrumented,
                const std::string &what)
{
    std::string bytes = vm::serializeImage(module, instrumented, 42);
    std::optional<vm::LoadedImage> img = vm::loadImage(bytes);
    ASSERT_TRUE(img) << what;
    EXPECT_EQ(img->contentHash, 42u) << what;
    EXPECT_EQ(img->instrumented, instrumented) << what;
    ASSERT_TRUE(img->predecoded->fullyDecoded()) << what;

    vm::PredecodedModule ref(module);
    ref.decodeAll();
    ASSERT_EQ(img->predecoded->numFunctions(), ref.numFunctions())
        << what;
    for (int fn = 0; fn < static_cast<int>(ref.numFunctions()); ++fn) {
        const vm::DecodedFunction &rf = ref.function(fn);
        const vm::DecodedFunction &lf = img->predecoded->function(fn);
        ASSERT_EQ(lf.numInstrs(), rf.numInstrs()) << what;
        ASSERT_EQ(lf.numBlocks(), rf.numBlocks()) << what;
        ASSERT_EQ(lf.numHists(), rf.numHists()) << what;
        for (std::size_t b = 0; b < rf.numBlocks(); ++b)
            EXPECT_EQ(lf.blockStart(static_cast<int>(b)),
                      rf.blockStart(static_cast<int>(b)))
                << what;
        const ir::Function &loaded_fn = img->module->function(fn);
        for (std::size_t i = 0; i < rf.numInstrs(); ++i) {
            const vm::DecodedInstr &d = lf.code()[i];
            expectSameInstr(d, rf.code()[i],
                            what + " fn " + std::to_string(fn) +
                                " instr " + std::to_string(i));
            // src must be fixed up into the LOADED module.
            ASSERT_EQ(d.src,
                      &loaded_fn.block(d.block)
                           .instrs()[static_cast<std::size_t>(d.ip)])
                << what;
        }
        for (std::size_t h = 0; h < rf.numHists(); ++h)
            EXPECT_EQ(lf.hist(static_cast<std::int32_t>(h)),
                      rf.hist(static_cast<std::int32_t>(h)))
                << what;
    }
}

class ImageRoundTrip : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ImageRoundTrip, DecodedStreamsBitIdentical)
{
    const Workload *w = workloads::findWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    expectRoundTrip(workloads::workloadModule(*w, true), true, w->name);
}

/** Native run from the image: final counters and stats must match. */
TEST_P(ImageRoundTrip, NativeRunMatchesCompiled)
{
    const Workload *w = workloads::findWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    const ir::Module &module = workloads::workloadModule(*w, true);

    std::optional<vm::LoadedImage> img =
        vm::loadImage(vm::serializeImage(module, true, 1));
    ASSERT_TRUE(img);

    auto run = [&](const ir::Module &m,
                   std::shared_ptr<vm::PredecodedModule> pre,
                   std::int64_t &cnt) {
        os::Kernel kernel(w->world(w->defaultScale));
        vm::MachineConfig cfg;
        cfg.predecoded = std::move(pre);
        vm::Machine machine(m, kernel, cfg);
        machine.run();
        cnt = machine.context(0).cnt;
        return machine.stats();
    };

    std::int64_t cnt_ref = 0, cnt_img = 0;
    vm::MachineStats ref = run(module, nullptr, cnt_ref);
    vm::MachineStats got =
        run(*img->module, img->predecoded, cnt_img);
    EXPECT_EQ(got.instructions, ref.instructions);
    EXPECT_EQ(got.syscalls, ref.syscalls);
    EXPECT_EQ(got.maxCnt, ref.maxCnt);
    EXPECT_EQ(cnt_img, cnt_ref); // final-counter invariant carries over
}

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names;
    for (const Workload &w : workloads::allWorkloads())
        names.push_back(w.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ImageRoundTrip, ::testing::ValuesIn(allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

/**
 * Dual execution with the image's shared streams: verdict and the
 * flight recorder's event sequence must match a freshly predecoded
 * run (timestamps excluded, as everywhere).
 */
TEST(ImageTest, RecorderEventOrderMatchesCompiled)
{
    const Workload *w = workloads::findWorkload("gif2png");
    ASSERT_NE(w, nullptr);
    const ir::Module &module = workloads::workloadModule(*w, true);
    std::optional<vm::LoadedImage> img =
        vm::loadImage(vm::serializeImage(module, true, 1));
    ASSERT_TRUE(img);

    auto run = [&](const ir::Module &m,
                   std::shared_ptr<vm::PredecodedModule> pre) {
        core::EngineConfig cfg;
        cfg.sinks = w->sinks;
        cfg.sources = w->sources;
        cfg.flightRecorder = true;
        cfg.wallClockCap = 60.0;
        cfg.vmConfig.predecoded = std::move(pre);
        core::DualEngine engine(m, w->world(w->defaultScale), cfg);
        return engine.run();
    };
    auto timeline = [](const core::DualResult &res, int side) {
        std::vector<std::string> keys;
        for (const obs::RecEvent &e : res.divergence.events[side]) {
            std::ostringstream os;
            os << obs::recKindName(e.kind) << " tid=" << e.tid
               << " cnt=" << e.cnt << " site=" << e.site
               << " sys=" << e.sysNo << " arg=" << e.arg;
            keys.push_back(os.str());
        }
        return keys;
    };

    core::DualResult ref = run(module, nullptr);
    core::DualResult got = run(*img->module, img->predecoded);
    EXPECT_EQ(got.causality(), ref.causality());
    EXPECT_EQ(got.alignedSyscalls, ref.alignedSyscalls);
    EXPECT_EQ(got.syscallDiffs, ref.syscallDiffs);
    ASSERT_EQ(got.divergence.present, ref.divergence.present);
    if (ref.divergence.present) {
        EXPECT_EQ(timeline(got, 0), timeline(ref, 0));
        EXPECT_EQ(timeline(got, 1), timeline(ref, 1));
    }
}

/** Fuzzer-generated programs round-trip too, instrumented and plain. */
TEST(ImageTest, GeneratedProgramSweep)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        fuzz::ProgramGenerator gen(seed, {});
        std::string source = gen.generate();
        auto module = lang::compileSource(source);
        expectRoundTrip(*module, false,
                        "seed " + std::to_string(seed) + " plain");
        instrument::CounterInstrumenter pass(*module);
        pass.run();
        expectRoundTrip(*module, true,
                        "seed " + std::to_string(seed) + " instr");
    }
}

// ---------------------------------------------------------------------
// Robustness: every malformed image is a clean miss.
// ---------------------------------------------------------------------

std::string
sampleImage()
{
    const Workload *w = workloads::findWorkload("401.bzip2");
    return vm::serializeImage(workloads::workloadModule(*w, true), true,
                              7);
}

TEST(ImageRobustness, TruncationAtEveryLengthIsAMiss)
{
    std::string bytes = sampleImage();
    ASSERT_TRUE(vm::loadImage(bytes));
    // Every strict prefix must be rejected; step through the header
    // byte by byte and the payload at a coarser stride.
    for (std::size_t len = 0; len < bytes.size();
         len += (len < 64 ? 1 : 61))
        EXPECT_FALSE(vm::loadImage(bytes.substr(0, len)))
            << "length " << len;
}

TEST(ImageRobustness, BitFlipsAreAMiss)
{
    std::string bytes = sampleImage();
    // Flip one bit at a sweep of offsets: header, module payload, and
    // decoded-stream payload. The payload hash (or, for the hash
    // field itself, the field validation) must reject every one.
    for (std::size_t pos = 0; pos < bytes.size();
         pos += (pos < 48 ? 1 : 53)) {
        std::string bad = bytes;
        bad[pos] = static_cast<char>(bad[pos] ^ 0x10);
        EXPECT_FALSE(vm::loadImage(bad)) << "offset " << pos;
    }
}

TEST(ImageRobustness, WrongMagicVersionEndianAreAMiss)
{
    std::string bytes = sampleImage();

    std::string wrong_magic = bytes;
    wrong_magic[7] = '2'; // "LDXIMG02"
    EXPECT_FALSE(vm::loadImage(wrong_magic));

    std::string wrong_endian = bytes;
    // Byte-swap the endian tag: a big-endian writer would store the
    // tag bytes reversed.
    std::swap(wrong_endian[8], wrong_endian[11]);
    std::swap(wrong_endian[9], wrong_endian[10]);
    EXPECT_FALSE(vm::loadImage(wrong_endian));

    std::string wrong_version = bytes;
    wrong_version[12] = 2;
    EXPECT_FALSE(vm::loadImage(wrong_version));

    EXPECT_FALSE(vm::loadImage(std::string()));
    EXPECT_FALSE(vm::loadImage(std::string(1 << 10, '\0')));
}

TEST(ImageRobustness, OversizedPayloadLengthIsAMiss)
{
    std::string bytes = sampleImage();
    // payloadSize at offset 40: claim more bytes than follow.
    bytes[40] = static_cast<char>(bytes[40] + 1);
    EXPECT_FALSE(vm::loadImage(bytes));
}

// ---------------------------------------------------------------------
// Cache plumbing.
// ---------------------------------------------------------------------

struct TempDir
{
    std::filesystem::path path;
    TempDir()
    {
        path = std::filesystem::temp_directory_path() /
               ("ldx_image_test_" + std::to_string(::getpid()));
        std::filesystem::remove_all(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(ImageCache, StoreThenProbeHits)
{
    TempDir tmp;
    const Workload *w = workloads::findWorkload("401.bzip2");
    const ir::Module &module = workloads::workloadModule(*w, true);
    std::uint64_t key = vm::imageKey(w->source, true);

    EXPECT_FALSE(vm::probeImageCache(tmp.path.string(), key));
    ASSERT_TRUE(vm::storeImageCache(tmp.path.string(), key, module,
                                    true));
    std::optional<vm::LoadedImage> img =
        vm::probeImageCache(tmp.path.string(), key);
    ASSERT_TRUE(img);
    EXPECT_EQ(img->contentHash, key);
    EXPECT_TRUE(img->instrumented);

    // A different key must miss even though a file for `key` exists.
    EXPECT_FALSE(vm::probeImageCache(tmp.path.string(), key + 1));
}

TEST(ImageCache, KeySeparatesVariantsAndSources)
{
    EXPECT_NE(vm::imageKey("int main() {}", true),
              vm::imageKey("int main() {}", false));
    EXPECT_NE(vm::imageKey("int main() {}", true),
              vm::imageKey("int main() { }", true));
}

TEST(ImageCache, CorruptedCacheFileIsAMiss)
{
    TempDir tmp;
    const Workload *w = workloads::findWorkload("401.bzip2");
    const ir::Module &module = workloads::workloadModule(*w, true);
    std::uint64_t key = vm::imageKey(w->source, true);
    ASSERT_TRUE(vm::storeImageCache(tmp.path.string(), key, module,
                                    true));
    std::string path = vm::imageCachePath(tmp.path.string(), key);
    {
        std::ofstream out(path, std::ios::binary);
        out << "garbage";
    }
    EXPECT_FALSE(vm::probeImageCache(tmp.path.string(), key));
}

} // namespace
} // namespace ldx
