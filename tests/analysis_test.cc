/**
 * @file
 * Unit tests for the CFG/call-graph analyses underlying the
 * instrumenter: topological sorts, dominators, natural loops (back
 * edges, exit edges, nesting), SCC-based recursion detection, and the
 * irreducible-CFG rejection.
 */
#include <gtest/gtest.h>

#include "analysis/callgraph.h"
#include "analysis/cfg.h"
#include "analysis/dominators.h"
#include "analysis/graph.h"
#include "analysis/loops.h"
#include "lang/compiler.h"
#include "support/diag.h"

namespace ldx {
namespace {

using analysis::DiGraph;

TEST(GraphTest, TopoOrderOnDag)
{
    DiGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(1, 3);
    g.addEdge(2, 3);
    auto order = analysis::topoOrder(g);
    ASSERT_TRUE(order.has_value());
    std::vector<int> pos(4);
    for (std::size_t i = 0; i < order->size(); ++i)
        pos[(*order)[i]] = static_cast<int>(i);
    EXPECT_LT(pos[0], pos[1]);
    EXPECT_LT(pos[0], pos[2]);
    EXPECT_LT(pos[1], pos[3]);
    EXPECT_LT(pos[2], pos[3]);
}

TEST(GraphTest, TopoOrderDetectsCycle)
{
    DiGraph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 0);
    EXPECT_FALSE(analysis::topoOrder(g).has_value());
}

TEST(GraphTest, ReversePostOrderStartsAtEntry)
{
    DiGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 1); // loop
    g.addEdge(1, 3);
    auto rpo = analysis::reversePostOrder(g, 0);
    ASSERT_FALSE(rpo.empty());
    EXPECT_EQ(rpo.front(), 0);
}

TEST(GraphTest, Reachability)
{
    DiGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(2, 3); // island
    auto seen = analysis::reachableFrom(g, 0);
    EXPECT_TRUE(seen[0]);
    EXPECT_TRUE(seen[1]);
    EXPECT_FALSE(seen[2]);
    EXPECT_FALSE(seen[3]);
}

TEST(GraphTest, RemoveEdge)
{
    DiGraph g(2);
    g.addEdge(0, 1);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.removeEdge(0, 1));
    EXPECT_FALSE(g.hasEdge(0, 1));
    EXPECT_FALSE(g.removeEdge(0, 1));
}

TEST(DominatorsTest, DiamondIdoms)
{
    //     0
    //    / .
    //   1   2
    //    . /
    //     3
    DiGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(1, 3);
    g.addEdge(2, 3);
    analysis::DominatorTree dom(g, 0);
    EXPECT_EQ(dom.idom(1), 0);
    EXPECT_EQ(dom.idom(2), 0);
    EXPECT_EQ(dom.idom(3), 0); // neither branch dominates the join
    EXPECT_TRUE(dom.dominates(0, 3));
    EXPECT_FALSE(dom.dominates(1, 3));
    EXPECT_TRUE(dom.dominates(3, 3));
}

TEST(DominatorsTest, ChainDominance)
{
    DiGraph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    analysis::DominatorTree dom(g, 0);
    EXPECT_TRUE(dom.dominates(1, 2));
    EXPECT_FALSE(dom.dominates(2, 1));
}

TEST(DominatorsTest, UnreachableNodesFlagged)
{
    DiGraph g(3);
    g.addEdge(0, 1);
    analysis::DominatorTree dom(g, 0);
    EXPECT_TRUE(dom.reachable(1));
    EXPECT_FALSE(dom.reachable(2));
    EXPECT_FALSE(dom.dominates(0, 2));
}

TEST(LoopsTest, SimpleLoopShape)
{
    // 0 -> 1 (header) -> 2 (body) -> 1, 1 -> 3 (exit)
    DiGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 1);
    g.addEdge(1, 3);
    analysis::LoopInfo li(g, 0);
    ASSERT_EQ(li.loops().size(), 1u);
    const analysis::Loop &loop = li.loops()[0];
    EXPECT_EQ(loop.header, 1);
    ASSERT_EQ(loop.latches.size(), 1u);
    EXPECT_EQ(loop.latches[0], 2);
    EXPECT_TRUE(loop.contains(1));
    EXPECT_TRUE(loop.contains(2));
    EXPECT_FALSE(loop.contains(3));
    ASSERT_EQ(loop.exitEdges.size(), 1u);
    EXPECT_EQ(loop.exitEdges[0].from, 1);
    EXPECT_EQ(loop.exitEdges[0].to, 3);
}

TEST(LoopsTest, NestedLoopsDepths)
{
    // outer: 1..4, inner: 2..3
    DiGraph g(6);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    g.addEdge(3, 2); // inner back edge
    g.addEdge(3, 4);
    g.addEdge(4, 1); // outer back edge
    g.addEdge(1, 5); // outer exit
    analysis::LoopInfo li(g, 0);
    ASSERT_EQ(li.loops().size(), 2u);
    int inner = li.innermostLoop(3);
    ASSERT_GE(inner, 0);
    EXPECT_EQ(li.loops()[static_cast<std::size_t>(inner)].header, 2);
    EXPECT_EQ(li.loops()[static_cast<std::size_t>(inner)].depth, 2);
    int outer_of_4 = li.innermostLoop(4);
    EXPECT_EQ(li.loops()[static_cast<std::size_t>(outer_of_4)].header,
              1);
}

TEST(LoopsTest, IrreducibleRejected)
{
    // Two entries into the "loop" 1 <-> 2.
    DiGraph g(3);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(1, 2);
    g.addEdge(2, 1);
    EXPECT_THROW(analysis::LoopInfo(g, 0), FatalError);
}

TEST(LoopsTest, SelfLoop)
{
    DiGraph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 1);
    g.addEdge(1, 2);
    analysis::LoopInfo li(g, 0);
    ASSERT_EQ(li.loops().size(), 1u);
    EXPECT_EQ(li.loops()[0].header, 1);
    EXPECT_EQ(li.loops()[0].latches[0], 1);
}

TEST(CallGraphTest, RecursionAndOrder)
{
    auto module = lang::compileSource(R"(
int leaf(int x) { return x; }
int selfrec(int n) { if (n <= 0) { return 0; } return selfrec(n - 1); }
int a(int n) { return b(n); }
int b(int n) { if (n <= 0) { return 0; } return a(n - 1); }
int top(int n) { return leaf(n) + a(n); }
int main() { return top(3) + selfrec(2); }
)");
    analysis::CallGraph cg(*module);
    auto id = [&](const char *name) {
        return module->findFunction(name)->id();
    };
    EXPECT_FALSE(cg.isRecursive(id("leaf")));
    EXPECT_TRUE(cg.isRecursive(id("selfrec")));
    EXPECT_TRUE(cg.isRecursive(id("a")));
    EXPECT_TRUE(cg.isRecursive(id("b")));
    EXPECT_FALSE(cg.isRecursive(id("top")));
    EXPECT_FALSE(cg.isRecursive(id("main")));
    EXPECT_EQ(cg.sccOf(id("a")), cg.sccOf(id("b")));
    EXPECT_NE(cg.sccOf(id("a")), cg.sccOf(id("selfrec")));

    // Reverse topological: callees appear before callers.
    auto order = cg.reverseTopoOrder();
    std::vector<int> pos(module->numFunctions());
    for (std::size_t i = 0; i < order.size(); ++i)
        pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
    EXPECT_LT(pos[static_cast<std::size_t>(id("leaf"))],
              pos[static_cast<std::size_t>(id("top"))]);
    EXPECT_LT(pos[static_cast<std::size_t>(id("top"))],
              pos[static_cast<std::size_t>(id("main"))]);
}

TEST(CfgBridgeTest, BuildCfgMatchesSuccessors)
{
    auto module = lang::compileSource(
        "int main() { int x = 1; if (x) { x = 2; } return x; }");
    const ir::Function &fn =
        module->function(module->mainFunction());
    DiGraph g = analysis::buildCfg(fn);
    EXPECT_EQ(g.numNodes(), static_cast<int>(fn.numBlocks()));
    for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
        EXPECT_EQ(g.succ[b].size(),
                  fn.block(static_cast<int>(b)).successors().size());
    }
}

} // namespace
} // namespace ldx
