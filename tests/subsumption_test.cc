/**
 * @file
 * Two corpus-wide semantic properties:
 *
 *  1. Instrumentation preserves behaviour: the instrumented module
 *     produces exactly the outputs of the uninstrumented one (counter
 *     code must be observationally invisible).
 *  2. Subsumption (§2): "if there is a technique that infers all
 *     strong CCs, it must subsume dynamic tainting" — every workload
 *     where the data-dependence trackers flag sinks is also flagged
 *     by LDX under whole-value mutation of the same sources.
 */
#include <gtest/gtest.h>

#include "ldx/engine.h"
#include "os/kernel.h"
#include "taint/tracker.h"
#include "vm/machine.h"
#include "workloads/workloads.h"

namespace ldx {
namespace {

using workloads::Workload;

std::vector<std::string>
allNames()
{
    std::vector<std::string> names;
    for (const Workload &w : workloads::allWorkloads())
        names.push_back(w.name);
    return names;
}

class CorpusProperties : public ::testing::TestWithParam<std::string>
{
  protected:
    const Workload &
    workload() const
    {
        return *workloads::findWorkload(GetParam());
    }
};

TEST_P(CorpusProperties, InstrumentationPreservesBehaviour)
{
    const Workload &w = workload();
    if (w.name == "x264") {
        // x264 is racy by design: instrumentation shifts preemption
        // points, so its lost-update statistic is schedule dependent
        // and not expected to be preserved bit for bit.
        GTEST_SKIP();
    }
    auto journal = [&](bool instrumented) {
        os::Kernel kernel(w.world(w.defaultScale));
        vm::Machine machine(workloads::workloadModule(w, instrumented),
                            kernel, {});
        machine.run();
        std::vector<std::pair<std::string, std::string>> out;
        for (const os::OutputRecord &rec : kernel.outputs())
            out.emplace_back(rec.channel, rec.payload);
        return out;
    };
    EXPECT_EQ(journal(false), journal(true));
}

TEST_P(CorpusProperties, LdxSubsumesDataDependenceTainting)
{
    const Workload &w = workload();

    taint::TaintRunOptions topt;
    topt.policy = taint::TaintPolicy::taintgrind();
    topt.sources = w.sources;
    core::SinkConfig sinks = w.sinks;
    topt.sinkChannel = [sinks](const std::string &channel) {
        return sinks.matchesChannel(channel);
    };
    topt.retTokenSinks = w.sinks.retTokens;
    topt.allocSizeSinks = w.sinks.allocSizes;
    auto tg = taint::runTaintAnalysis(workloads::workloadModule(w, false),
                                      w.world(w.defaultScale), topt);
    if (tg.taintedSinks.empty())
        return; // nothing for LDX to subsume on this program

    // Data dependences are strong causalities, so mutating the whole
    // source value must surface a difference at some sink.
    std::vector<core::SourceSpec> whole;
    for (const core::SourceSpec &src : w.sources)
        whole.push_back(src.wholeValue());
    core::EngineConfig cfg;
    cfg.sinks = w.sinks;
    cfg.sources = whole;
    cfg.wallClockCap = 30.0;
    core::DualEngine engine(workloads::workloadModule(w, true),
                            w.world(w.defaultScale), cfg);
    auto res = engine.run();
    EXPECT_FALSE(res.deadlocked);
    EXPECT_TRUE(res.causality())
        << w.name << ": TaintGrind flags " << tg.taintedSinks.size()
        << " sink(s) but LDX reports nothing";
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CorpusProperties, ::testing::ValuesIn(allNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace ldx
