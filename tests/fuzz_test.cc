/**
 * @file
 * Tests for the differential fuzzing subsystem (src/fuzz/): generator
 * determinism and feature coverage, oracle clean sweeps across the
 * config matrix, the fault-injection self-test (a known engine bug
 * must be caught and shrunk to a small reproducer), and the
 * `--metrics=json-stable` determinism contract.
 */
#include <gtest/gtest.h>

#include <set>

#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "fuzz/shrinker.h"
#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "ldx/engine.h"
#include "testutil.h"

namespace ldx {
namespace {

// ---------------------------------------------------------------
// Generator.
// ---------------------------------------------------------------

TEST(FuzzGenerator, SameSeedIsByteIdentical)
{
    for (std::uint64_t seed : {1, 7, 42, 1234}) {
        fuzz::ProgramGenerator a(seed);
        fuzz::ProgramGenerator b(seed);
        EXPECT_EQ(a.generate(), b.generate()) << "seed " << seed;
    }
}

TEST(FuzzGenerator, DifferentSeedsDiffer)
{
    fuzz::ProgramGenerator a(1);
    fuzz::ProgramGenerator b(2);
    EXPECT_NE(a.generate(), b.generate());
}

TEST(FuzzGenerator, WorldDerivationIsDeterministic)
{
    os::WorldSpec a = fuzz::ProgramGenerator::worldFor(9);
    os::WorldSpec b = fuzz::ProgramGenerator::worldFor(9);
    EXPECT_EQ(a.files, b.files);
    EXPECT_EQ(a.env, b.env);
    ASSERT_EQ(a.files.count("/input.txt"), 1u);
    EXPECT_EQ(a.files.at("/input.txt").size(), 48u);
}

TEST(FuzzGenerator, SweepCoversTheFullFeatureSet)
{
    // No single seed uses everything; the union over a small sweep
    // must. A weight regression that silently disables a feature
    // class trips this.
    std::string all;
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
        fuzz::ProgramGenerator gen(seed);
        all += gen.generate();
    }
    for (const char *needle :
         {"spawn(", "join(", "lock(", "unlock(", "int *", "char *",
          "fn ", "rec1(", "rec2(", "helper0(", "malloc(", "free(",
          "recv(", "send(", "connect(", "getenv(", "open(", "read(",
          "write(", "while (", "for (", "if (", "time()"}) {
        EXPECT_NE(all.find(needle), std::string::npos)
            << "feature never emitted: " << needle;
    }
}

TEST(FuzzGenerator, EveryProgramCompilesAndTerminates)
{
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        fuzz::ProgramGenerator gen(seed);
        std::string source = gen.generate();
        SCOPED_TRACE("seed " + std::to_string(seed));
        test::RunResult r = test::runProgram(
            source, fuzz::ProgramGenerator::worldFor(seed));
        EXPECT_EQ(r.status, vm::StepStatus::Finished)
            << r.trapMessage << "\nprogram:\n" << source;
    }
}

TEST(FuzzGenerator, RenderWithRemovedNodesDropsSubtrees)
{
    fuzz::ProgramGenerator gen(5);
    fuzz::GenProgram prog = gen.generateProgram();
    ASSERT_GT(prog.numNodes, 0);
    std::string full = prog.render();
    EXPECT_EQ(full, prog.render({}, {}));
    // Removing an alive removable node must shrink the rendering.
    std::vector<int> alive = prog.aliveRemovable({}, {});
    ASSERT_FALSE(alive.empty());
    std::string reduced = prog.render({alive.front()}, {});
    EXPECT_LT(reduced.size(), full.size());
}

// ---------------------------------------------------------------
// Oracle.
// ---------------------------------------------------------------

TEST(FuzzOracle, CleanSweepQuickMatrix)
{
    fuzz::OracleOptions opt;
    opt.fullMatrix = false;
    fuzz::Oracle oracle(opt);
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
        fuzz::SeedReport rep = oracle.run(seed);
        EXPECT_TRUE(rep.compiled) << "seed " << seed;
        EXPECT_TRUE(rep.violations.empty())
            << "seed " << seed << ": "
            << rep.violations.front().describe() << "\nprogram:\n"
            << rep.source;
    }
}

TEST(FuzzOracle, CleanSweepFullMatrix)
{
    fuzz::Oracle oracle;
    for (std::uint64_t seed = 30; seed <= 36; ++seed) {
        fuzz::SeedReport rep = oracle.run(seed);
        EXPECT_TRUE(rep.ok())
            << "seed " << seed << ": "
            << (rep.violations.empty()
                    ? "did not compile"
                    : rep.violations.front().describe())
            << "\nprogram:\n" << rep.source;
    }
}

TEST(FuzzOracle, MatrixShapes)
{
    EXPECT_EQ(fuzz::Oracle::matrix(true).size(), 16u);
    EXPECT_EQ(fuzz::Oracle::matrix(false).size(), 4u);
    std::set<std::string> names;
    for (const fuzz::CellSpec &c : fuzz::Oracle::matrix(true))
        names.insert(c.name());
    EXPECT_EQ(names.size(), 16u) << "cell slugs must be unique";
    EXPECT_EQ(names.count("threaded/fast/rec/mut"), 1u);
    EXPECT_EQ(names.count("lockstep/slow/norec/clean"), 1u);
}

TEST(FuzzOracle, UncompilableSourceIsRejectedNotViolating)
{
    fuzz::Oracle oracle;
    fuzz::SeedReport rep =
        oracle.runSource(1, "int main() { return undeclared(); }");
    EXPECT_FALSE(rep.compiled);
    EXPECT_TRUE(rep.violations.empty());
    EXPECT_FALSE(rep.ok());
}

// ---------------------------------------------------------------
// Fault injection + shrinker: the oracle must catch a known engine
// bug and delta-debug the seed to a small reproducer.
// ---------------------------------------------------------------

TEST(FuzzInjection, SkippedCompensationCounterIsCaughtAndShrunk)
{
    fuzz::OracleOptions opt;
    opt.fullMatrix = false;
    opt.checkDeterminism = false;
    opt.chaosSkipCntAddPeriod = 3;
    fuzz::Oracle oracle(opt);

    std::uint64_t found = 0;
    fuzz::SeedReport rep;
    for (std::uint64_t seed = 1; seed <= 500 && !found; ++seed) {
        rep = oracle.run(seed);
        if (rep.compiled && !rep.violations.empty())
            found = seed;
    }
    ASSERT_NE(found, 0u)
        << "injected bug not caught within 500 seeds";

    // The native final-counter invariant is the designed detector.
    bool counter_violation = false;
    for (const fuzz::Violation &v : rep.violations)
        counter_violation =
            counter_violation || v.invariant == "final-counter";
    EXPECT_TRUE(counter_violation)
        << rep.violations.front().describe();

    fuzz::ProgramGenerator gen(found);
    fuzz::Shrinker shrinker(oracle);
    fuzz::ShrinkResult sr =
        shrinker.shrink(found, gen.generateProgram());
    EXPECT_TRUE(sr.changed);

    // The reproducer still fails and is tiny.
    fuzz::SeedReport min_rep = oracle.runSource(found, sr.source);
    EXPECT_TRUE(min_rep.compiled);
    EXPECT_FALSE(min_rep.violations.empty());
    int lines = 0;
    for (char c : sr.source)
        lines += c == '\n';
    EXPECT_LE(lines, 30) << "reproducer not minimal:\n" << sr.source;
}

TEST(FuzzInjection, DroppedSnapshotPageIsCaughtAndShrunk)
{
    // Plant the stale-snapshot bug: every fork's slave-memory restore
    // silently skips one page, so a fork resumes from incomplete
    // state. The snapshot-equality invariant (forked run vs full run)
    // is the designed detector.
    fuzz::OracleOptions opt;
    opt.fullMatrix = false;
    opt.checkDeterminism = false;
    opt.chaosDropSnapshotPage = 1;
    // Three mutation sources so the snapshot check triggers on the
    // env var — touched late, after the program has dirtied memory
    // the injector can then fail to restore.
    opt.mutationSources = 3;
    fuzz::Oracle oracle(opt);

    std::uint64_t found = 0;
    fuzz::SeedReport rep;
    for (std::uint64_t seed = 1; seed <= 500 && !found; ++seed) {
        rep = oracle.run(seed);
        if (rep.compiled && !rep.violations.empty())
            found = seed;
    }
    ASSERT_NE(found, 0u)
        << "injected stale-snapshot bug not caught within 500 seeds";

    bool snapshot_violation = false;
    for (const fuzz::Violation &v : rep.violations)
        snapshot_violation =
            snapshot_violation || v.invariant == "snapshot-equality";
    EXPECT_TRUE(snapshot_violation)
        << rep.violations.front().describe();

    fuzz::ProgramGenerator gen(found);
    fuzz::Shrinker shrinker(oracle);
    fuzz::ShrinkResult sr =
        shrinker.shrink(found, gen.generateProgram());

    // The reproducer (shrunk or not) still fails the same way.
    fuzz::SeedReport min_rep = oracle.runSource(found, sr.source);
    EXPECT_TRUE(min_rep.compiled);
    EXPECT_FALSE(min_rep.violations.empty());
}

TEST(FuzzShrinker, CleanSeedShrinksToNothing)
{
    // On a healthy engine nothing fails, so the shrinker's predicate
    // rejects every candidate and reports no change.
    fuzz::OracleOptions opt;
    opt.fullMatrix = false;
    opt.checkDeterminism = false;
    fuzz::Oracle oracle(opt);
    fuzz::ProgramGenerator gen(3);
    fuzz::Shrinker shrinker(oracle, {40});
    fuzz::ShrinkResult sr = shrinker.shrink(3, gen.generateProgram());
    EXPECT_FALSE(sr.changed);
    EXPECT_EQ(sr.source, fuzz::ProgramGenerator(3).generate());
}

// ---------------------------------------------------------------
// Stable JSON determinism (`--metrics=json-stable`).
// ---------------------------------------------------------------

std::string
stableJsonFor(const ir::Module &module, const os::WorldSpec &world,
              bool threaded, std::uint64_t seed)
{
    core::EngineConfig cfg;
    cfg.threaded = threaded;
    cfg.wallClockCap = 30.0;
    cfg.sources = {core::SourceSpec::file("/input.txt", seed % 16)};
    core::DualEngine engine(module, world, cfg);
    core::DualResult res = engine.run();
    return core::resultJsonStable(res);
}

TEST(FuzzStableJson, IdenticalAcrossRunsAndDrivers)
{
    // Single-threaded guests only: a contended mutex may or may not
    // record a lock-order divergence depending on the driver (§7
    // best-effort sharing), which is exactly the nondeterminism the
    // threaded fingerprint in the oracle excludes.
    fuzz::GenOptions gopt;
    gopt.wThreads = 0;
    for (std::uint64_t seed : {2, 11, 23}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        fuzz::ProgramGenerator gen(seed, gopt);
        std::string source = gen.generate();
        ASSERT_EQ(source.find("spawn("), std::string::npos);
        auto module = lang::compileSource(source);
        instrument::CounterInstrumenter pass(*module);
        pass.run();
        os::WorldSpec world =
            fuzz::ProgramGenerator::worldFor(seed);

        std::string lockstep =
            stableJsonFor(*module, world, false, seed);
        EXPECT_TRUE(test::validJson(lockstep)) << lockstep;
        EXPECT_EQ(lockstep,
                  stableJsonFor(*module, world, false, seed));
        EXPECT_EQ(lockstep,
                  stableJsonFor(*module, world, true, seed));
        EXPECT_EQ(lockstep,
                  stableJsonFor(*module, world, true, seed));

        // No timing fields may appear.
        EXPECT_EQ(lockstep.find("wall_seconds"), std::string::npos);
        EXPECT_EQ(lockstep.find("driver."), std::string::npos);
        EXPECT_EQ(lockstep.find("chan."), std::string::npos);
        EXPECT_EQ(lockstep.find("recorder."), std::string::npos);
        EXPECT_EQ(lockstep.find("watchdog."), std::string::npos);
        EXPECT_NE(lockstep.find("\"causality\""), std::string::npos);
        EXPECT_NE(lockstep.find("\"divergence\""), std::string::npos);
    }
}

} // namespace
} // namespace ldx
