/**
 * @file
 * Instrumenter edge cases on hand-built IR: multi-return
 * normalization, syscall-free programs, unreachable blocks, and
 * loop-activity filtering (§5: compute-only loops get no barriers).
 */
#include <gtest/gtest.h>

#include "instrument/instrument.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "lang/compiler.h"
#include "os/kernel.h"
#include "os/sysno.h"
#include "vm/machine.h"

namespace ldx {
namespace {

int
countOps(const ir::Module &m, ir::Opcode op)
{
    int n = 0;
    for (std::size_t f = 0; f < m.numFunctions(); ++f) {
        const ir::Function &fn = m.function(static_cast<int>(f));
        for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
            for (const ir::Instr &instr :
                 fn.block(static_cast<int>(b)).instrs()) {
                n += instr.op == op;
            }
        }
    }
    return n;
}

TEST(InstrumentEdgeTest, MultiReturnFunctionNormalized)
{
    // Hand-built two-ret function: ret 1 on the then-branch with a
    // syscall, ret 2 on the else-branch without. After normalization
    // and compensation, the counter total must be path invariant.
    ir::Module m;
    ir::Function &fn = m.addFunction("main", 0);
    int entry = fn.newBlock().id();
    int then_bb = fn.newBlock().id();
    int else_bb = fn.newBlock().id();
    ir::IRBuilder b(fn);

    b.setBlock(entry);
    int t = b.emitSyscall(static_cast<std::int64_t>(os::Sys::Time), {});
    int c = b.emitBinary(ir::Opcode::And, ir::IRBuilder::reg(t),
                         ir::IRBuilder::imm(1));
    b.emitCondBr(ir::IRBuilder::reg(c), then_bb, else_bb);

    b.setBlock(then_bb);
    b.emitSyscall(static_cast<std::int64_t>(os::Sys::Time), {});
    b.emitRet(ir::IRBuilder::imm(1));

    b.setBlock(else_bb);
    b.emitRet(ir::IRBuilder::imm(2));

    instrument::CounterInstrumenter pass(m);
    pass.run();
    ir::verifyOrDie(m);

    // Exactly one Ret remains after single-exit normalization.
    EXPECT_EQ(countOps(m, ir::Opcode::Ret), 1);
    EXPECT_EQ(pass.fcnt().at(fn.id()), 2); // time + max(time, none)

    os::Kernel kernel({});
    vm::Machine machine(m, kernel, {});
    ASSERT_EQ(machine.run(), vm::StepStatus::Finished);
    EXPECT_EQ(machine.context(0).cnt, 2);
}

TEST(InstrumentEdgeTest, SyscallFreeProgramGetsNoOps)
{
    auto module = lang::compileSource(
        "int sq(int x) { return x * x; }"
        "int main() { int s = 0;"
        "  for (int i = 0; i < 10; i = i + 1) { s = s + sq(i); }"
        "  return s; }");
    instrument::CounterInstrumenter pass(*module);
    auto stats = pass.run();
    EXPECT_EQ(stats.insertedOps, 0u);
    EXPECT_EQ(stats.loops, 0);
    EXPECT_EQ(stats.maxStaticCnt, 0);
    EXPECT_EQ(countOps(*module, ir::Opcode::SyncBarrier), 0);
}

TEST(InstrumentEdgeTest, ComputeLoopsGetNoBarriers)
{
    // One loop with a syscall, one pure compute loop: only the first
    // is instrumented (§5).
    auto module = lang::compileSource(R"(
int main() {
    int s = 0;
    for (int i = 0; i < 100; i = i + 1) { s = s + i * i; }
    for (int j = 0; j < 3; j = j + 1) { s = s + time() % 5; }
    printi(s);
    return 0;
}
)");
    instrument::CounterInstrumenter pass(*module);
    auto stats = pass.run();
    EXPECT_EQ(stats.loops, 1);
    EXPECT_EQ(countOps(*module, ir::Opcode::SyncBarrier), 1);
}

TEST(InstrumentEdgeTest, LoopCallingSyscallFunctionIsActive)
{
    // The loop body has no literal syscall, but calls a function with
    // FCNT > 0 — it must still be barrier instrumented.
    auto module = lang::compileSource(R"(
int tick(int x) { return time() + x; }
int main() {
    int s = 0;
    for (int i = 0; i < 4; i = i + 1) { s = tick(s); }
    printi(s);
    return 0;
}
)");
    instrument::CounterInstrumenter pass(*module);
    auto stats = pass.run();
    EXPECT_EQ(stats.loops, 1);
}

TEST(InstrumentEdgeTest, LoopWithIndirectCallIsActive)
{
    auto module = lang::compileSource(R"(
int quiet(int x) { return x + 1; }
int main() {
    fn f = &quiet;
    int s = 0;
    for (int i = 0; i < 4; i = i + 1) { s = f(s); }
    printi(s);
    return 0;
}
)");
    instrument::CounterInstrumenter pass(*module);
    auto stats = pass.run();
    EXPECT_EQ(stats.loops, 1);
    EXPECT_GE(countOps(*module, ir::Opcode::CntPush), 1);
}

TEST(InstrumentEdgeTest, UnreachableCodeTolerated)
{
    auto module = lang::compileSource(R"(
int main() {
    time();
    return 1;
    time();  // dead
    return 2;
}
)");
    instrument::CounterInstrumenter pass(*module);
    EXPECT_NO_THROW(ir::verifyOrDie(*module));
    os::Kernel kernel({});
    vm::Machine machine(*module, kernel, {});
    EXPECT_EQ(machine.run(), vm::StepStatus::Finished);
    EXPECT_EQ(machine.exitCode(), 1);
}

TEST(InstrumentEdgeTest, DoWhileLoopInstrumented)
{
    auto module = lang::compileSource(R"(
int main() {
    int i = 0;
    do {
        time();
        i = i + 1;
    } while (i < 3);
    printi(i);
    return 0;
}
)");
    instrument::CounterInstrumenter pass(*module);
    auto stats = pass.run();
    EXPECT_EQ(stats.loops, 1);
    os::Kernel kernel({});
    vm::Machine machine(*module, kernel, {});
    ASSERT_EQ(machine.run(), vm::StepStatus::Finished);
    EXPECT_EQ(machine.context(0).cnt, pass.fcnt().at(
        module->mainFunction()));
}

TEST(InstrumentEdgeTest, SiteIdsAreDense)
{
    auto module = lang::compileSource(
        "int main() { time(); while (time() < 0) { time(); } "
        "return 0; }");
    instrument::CounterInstrumenter pass(*module);
    pass.run();
    // Every Syscall instruction carries its site id; ids are dense.
    std::set<int> seen;
    for (std::size_t f = 0; f < module->numFunctions(); ++f) {
        const ir::Function &fn = module->function(static_cast<int>(f));
        for (std::size_t b = 0; b < fn.numBlocks(); ++b) {
            for (const ir::Instr &instr :
                 fn.block(static_cast<int>(b)).instrs()) {
                if (instr.op == ir::Opcode::Syscall) {
                    EXPECT_GE(instr.site, 0);
                    seen.insert(instr.site);
                }
                if (instr.op == ir::Opcode::SyncBarrier)
                    seen.insert(static_cast<int>(instr.imm));
            }
        }
    }
    EXPECT_EQ(seen.size(), pass.sites().size());
    for (int id : seen)
        EXPECT_LT(id, static_cast<int>(pass.sites().size()));
}

} // namespace
} // namespace ldx
