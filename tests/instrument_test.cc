/**
 * @file
 * Tests of the counter instrumentation pass (Algorithms 1 and 3).
 *
 * The key property (§4.1): along *any* path through a function, the
 * counter accumulates exactly the same total — the maximum number of
 * syscalls on any acyclic path — so executions that reach the same
 * program point agree on the counter value. We check this by running
 * instrumented programs natively on many inputs and asserting that
 * the final counter always equals the statically computed FCNT(main).
 */
#include <gtest/gtest.h>

#include "instrument/instrument.h"
#include "ir/verifier.h"
#include "lang/compiler.h"
#include "os/kernel.h"
#include "support/diag.h"
#include "vm/machine.h"

namespace ldx {
namespace {

struct InstrumentedRun
{
    std::int64_t finalCnt = 0;
    std::int64_t exitCode = 0;
    vm::StepStatus status = vm::StepStatus::Finished;
    vm::MachineStats stats;
};

InstrumentedRun
runInstrumented(const std::string &source, const os::WorldSpec &spec,
                instrument::InstrumentStats *out_stats = nullptr,
                std::map<int, std::int64_t> *out_fcnt = nullptr,
                const ir::Module **out_module = nullptr)
{
    static std::map<std::string, std::unique_ptr<ir::Module>> cache;
    static std::map<std::string, instrument::InstrumentStats> statsCache;
    static std::map<std::string, std::map<int, std::int64_t>> fcntCache;
    auto it = cache.find(source);
    if (it == cache.end()) {
        auto module = lang::compileSource(source);
        instrument::CounterInstrumenter pass(*module);
        statsCache[source] = pass.run();
        fcntCache[source] = pass.fcnt();
        ir::verifyOrDie(*module);
        it = cache.emplace(source, std::move(module)).first;
    }
    if (out_stats)
        *out_stats = statsCache[source];
    if (out_fcnt)
        *out_fcnt = fcntCache[source];
    if (out_module)
        *out_module = it->second.get();

    os::Kernel kernel(spec);
    vm::Machine machine(*it->second, kernel, {});
    InstrumentedRun run;
    run.status = machine.run();
    run.exitCode = machine.exitCode();
    run.finalCnt = machine.context(0).cnt;
    run.stats = machine.stats();
    return run;
}

// A program with branches containing different numbers of syscalls.
const char *kBranchy = R"(
int main() {
    char buf[32];
    int n = getenv("MODE", buf, 32);
    if (n > 0 && buf[0] == 'a') {
        time();
        time();
        time();
    } else {
        time();
    }
    print("done", 4);
    return 0;
}
)";

TEST(InstrumentTest, BranchCompensationEqualizesCounter)
{
    os::WorldSpec w1;
    w1.env["MODE"] = "a";
    os::WorldSpec w2;
    w2.env["MODE"] = "b";
    os::WorldSpec w3; // MODE unset

    std::map<int, std::int64_t> fcnt;
    const ir::Module *module = nullptr;
    auto r1 = runInstrumented(kBranchy, w1, nullptr, &fcnt, &module);
    auto r2 = runInstrumented(kBranchy, w2);
    auto r3 = runInstrumented(kBranchy, w3);

    std::int64_t expect = fcnt[module->mainFunction()];
    // getenv + max(3,1) syscalls + print = 5.
    EXPECT_EQ(expect, 5);
    EXPECT_EQ(r1.finalCnt, expect);
    EXPECT_EQ(r2.finalCnt, expect);
    EXPECT_EQ(r3.finalCnt, expect);
}

// The paper's running example (Fig. 2): SRaise reads a contract file
// (2 syscalls), MRaise calls SRaise and conditionally writes (total
// increment 3), main reads employee data and reports.
const char *kEmployee = R"(
int SRaise(int salary, char *contract) {
    char buf[16];
    int fd = open(contract, 0);
    read(fd, buf, 8);
    return salary / 10 + buf[0];
}

int MRaise(int salary, int age) {
    int raise = SRaise(salary, "/contract_m.txt");
    if (salary > 5000) {
        int fd = open("/seniors.txt", 2);
        write(fd, "senior\n", 7);
        close(fd);
    }
    return raise + 100;
}

int main() {
    char title[16];
    char dept[16];
    int raise = 0;
    getenv("TITLE", title, 16);
    int salary = atoi("4000");
    if (title[0] == 'S') {
        raise = SRaise(salary, "/contract_s.txt");
    } else {
        raise = MRaise(salary, 1);
        getenv("DEPT", dept, 16);
    }
    int s = socket();
    connect(s, "hr.example.com");
    send(s, title, strlen(title));
    printi(raise);
    return 0;
}
)";

TEST(InstrumentTest, EmployeeExampleFcnts)
{
    os::WorldSpec w;
    w.env["TITLE"] = "STAFF";
    w.env["DEPT"] = "SALES";
    w.files["/contract_s.txt"] = "11111111";
    w.files["/contract_m.txt"] = "22222222";
    w.peers["hr.example.com"].responses = {"ok"};

    std::map<int, std::int64_t> fcnt;
    const ir::Module *module = nullptr;
    instrument::InstrumentStats stats;
    auto r1 = runInstrumented(kEmployee, w, &stats, &fcnt, &module);
    EXPECT_EQ(r1.status, vm::StepStatus::Finished);

    // Paper values: SRaise = 2 (open+read); MRaise = 2 + max(3,0)+...
    EXPECT_EQ(fcnt[module->findFunction("SRaise")->id()], 2);
    // MRaise: SRaise(2) + write path (open+write+close = 3) = 5.
    EXPECT_EQ(fcnt[module->findFunction("MRaise")->id()], 5);

    // Both input variants finish with the same counter.
    os::WorldSpec w2 = w;
    w2.env["TITLE"] = "MANAGER";
    auto r2 = runInstrumented(kEmployee, w2);
    EXPECT_EQ(r1.finalCnt, fcnt[module->mainFunction()]);
    EXPECT_EQ(r2.finalCnt, fcnt[module->mainFunction()]);
}

// Loops: counter is bounded (reset at back edges) and raised above
// in-loop values at exit, independent of trip counts (Algorithm 3).
const char *kLoops = R"(
int main() {
    char buf[8];
    int fd = open("/nm.txt", 0);
    read(fd, buf, 2);
    int n = buf[0] - '0';
    int m = buf[1] - '0';
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < m; j = j + 1) {
            read(fd, buf, 1);
        }
        int out = open("/log.txt", 2);
        write(out, "x", 1);
        close(out);
    }
    int s = socket();
    connect(s, "sink.example.com");
    send(s, buf, 1);
    return 0;
}
)";

class LoopTripSweep
    : public ::testing::TestWithParam<std::pair<int, int>>
{};

TEST_P(LoopTripSweep, FinalCounterIndependentOfTripCounts)
{
    auto [n, m] = GetParam();
    os::WorldSpec w;
    std::string data;
    data += static_cast<char>('0' + n);
    data += static_cast<char>('0' + m);
    data += std::string(64, 'z');
    w.files["/nm.txt"] = data;
    w.peers["sink.example.com"] = {};

    std::map<int, std::int64_t> fcnt;
    const ir::Module *module = nullptr;
    auto r = runInstrumented(kLoops, w, nullptr, &fcnt, &module);
    EXPECT_EQ(r.status, vm::StepStatus::Finished);
    EXPECT_EQ(r.finalCnt, fcnt[module->mainFunction()]);
    // The dynamic max counter never exceeds the static maximum:
    // the loop reset keeps it bounded regardless of iterations.
    EXPECT_LE(r.stats.maxCnt, fcnt[module->mainFunction()]);
}

INSTANTIATE_TEST_SUITE_P(
    TripCounts, LoopTripSweep,
    ::testing::Values(std::make_pair(0, 0), std::make_pair(1, 1),
                      std::make_pair(1, 5), std::make_pair(5, 1),
                      std::make_pair(3, 3), std::make_pair(7, 2),
                      std::make_pair(2, 7), std::make_pair(9, 9)));

// Recursion: call sites into recursive functions push/reset/pop, so
// the caller's counter is unaffected by recursion depth.
const char *kRecursive = R"(
int walk(int depth) {
    time();
    if (depth <= 0) { return 0; }
    return 1 + walk(depth - 1);
}

int main() {
    char buf[8];
    getenv("DEPTH", buf, 8);
    int d = atoi(buf);
    walk(d);
    print("end", 3);
    return 0;
}
)";

class RecursionDepthSweep : public ::testing::TestWithParam<int>
{};

TEST_P(RecursionDepthSweep, CounterIndependentOfDepth)
{
    os::WorldSpec w;
    w.env["DEPTH"] = std::to_string(GetParam());
    std::map<int, std::int64_t> fcnt;
    const ir::Module *module = nullptr;
    auto r = runInstrumented(kRecursive, w, nullptr, &fcnt, &module);
    EXPECT_EQ(r.status, vm::StepStatus::Finished);
    EXPECT_EQ(r.finalCnt, fcnt[module->mainFunction()]);
}

INSTANTIATE_TEST_SUITE_P(Depths, RecursionDepthSweep,
                         ::testing::Values(0, 1, 2, 5, 10, 30));

// Indirect calls: push/reset/pop keeps the caller aligned without
// knowing the callee (§6).
const char *kIndirect = R"(
int quiet(int x) { return x + 1; }
int chatty(int x) { time(); time(); time(); return x + 2; }

int main() {
    char buf[8];
    getenv("WHICH", buf, 8);
    fn f = &quiet;
    if (buf[0] == 'c') { f = &chatty; }
    int r = f(10);
    print("done", 4);
    return r;
}
)";

TEST(InstrumentTest, IndirectCallsResetCounter)
{
    os::WorldSpec w1;
    w1.env["WHICH"] = "quiet";
    os::WorldSpec w2;
    w2.env["WHICH"] = "chatty";
    std::map<int, std::int64_t> fcnt;
    const ir::Module *module = nullptr;
    auto r1 = runInstrumented(kIndirect, w1, nullptr, &fcnt, &module);
    auto r2 = runInstrumented(kIndirect, w2);
    EXPECT_EQ(r1.exitCode, 11);
    EXPECT_EQ(r2.exitCode, 12);
    // Caller-side counter identical although the callees have
    // different syscall counts.
    EXPECT_EQ(r1.finalCnt, r2.finalCnt);
    EXPECT_EQ(r1.finalCnt, fcnt[module->mainFunction()]);
}

TEST(InstrumentTest, StatsAreReported)
{
    instrument::InstrumentStats stats;
    os::WorldSpec w;
    w.env["WHICH"] = "q";
    runInstrumented(kIndirect, w, &stats);
    EXPECT_GT(stats.insertedOps, 0u);
    EXPECT_GT(stats.originalInstrs, stats.insertedOps);
    EXPECT_EQ(stats.indirectCallSites, 1);
    EXPECT_EQ(stats.syscallSites, 5);
    EXPECT_GT(stats.instrumentedRatio(), 0.0);
    EXPECT_LT(stats.instrumentedRatio(), 1.0);
}

TEST(InstrumentTest, DoubleInstrumentationRejected)
{
    auto module = lang::compileSource(
        "int main() { time(); return 0; }");
    instrument::CounterInstrumenter p1(*module);
    p1.run();
    instrument::CounterInstrumenter p2(*module);
    EXPECT_THROW(p2.run(), FatalError);
}

TEST(InstrumentTest, BreakOutOfLoopCompensated)
{
    const char *src = R"(
int main() {
    char buf[8];
    getenv("N", buf, 8);
    int n = atoi(buf);
    for (int i = 0; i < 10; i = i + 1) {
        time();
        if (i == n) { break; }
        time();
    }
    print("x", 1);
    return 0;
}
)";
    std::map<int, std::int64_t> fcnt;
    const ir::Module *module = nullptr;
    std::int64_t expect = -1;
    for (int n : {0, 1, 3, 9, 100}) {
        os::WorldSpec w;
        w.env["N"] = std::to_string(n);
        auto r = runInstrumented(src, w, nullptr, &fcnt, &module);
        ASSERT_EQ(r.status, vm::StepStatus::Finished);
        if (expect < 0)
            expect = fcnt[module->mainFunction()];
        EXPECT_EQ(r.finalCnt, expect) << "n=" << n;
    }
}

TEST(InstrumentTest, SitesHaveDescriptors)
{
    auto module = lang::compileSource(
        "int main() { time(); while (time() < 0) { time(); } "
        "return 0; }");
    instrument::CounterInstrumenter pass(*module);
    pass.run();
    ASSERT_FALSE(pass.sites().empty());
    int barriers = 0, syscalls = 0;
    for (const auto &site : pass.sites()) {
        EXPECT_EQ(site.id, static_cast<int>(&site - pass.sites().data()));
        if (site.isBarrier)
            ++barriers;
        else
            ++syscalls;
    }
    EXPECT_EQ(barriers, 1);
    EXPECT_EQ(syscalls, 3);
}

} // namespace
} // namespace ldx
