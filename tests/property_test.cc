/**
 * @file
 * Property tests over randomly generated programs.
 *
 * The shared fuzz::ProgramGenerator (src/fuzz/generator.h) emits
 * random — but terminating, trap-free — MiniC programs covering the
 * full language surface: pointers, arrays, function pointers, heap
 * use, spawn/lock thread units, file and socket syscalls, and nested
 * recursion. For every seed we check the protocol's core guarantees:
 *
 *  1. no-mutation dual execution aligns: zero syscall diffs beyond
 *     best-effort lock-order divergences (§7, threaded guests only),
 *     zero findings, no deadlock — nondeterminism (clock, PRNG, pid,
 *     heap base) is fully suppressed by outcome sharing;
 *  2. under mutation, dual execution always terminates without
 *     deadlock (path differences are tolerated and realigned);
 *  3. the final counter equals FCNT(main) in every run (the
 *     instrumentation invariant).
 *
 * The exhaustive version of these checks — per-cell across the whole
 * driver × decode × recorder × mutation matrix — lives in
 * fuzz::Oracle and runs via `ldx fuzz`; this suite is the fast
 * in-tree sweep.
 */
#include <gtest/gtest.h>

#include "fuzz/generator.h"
#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "ldx/engine.h"
#include "os/kernel.h"
#include "vm/machine.h"

namespace ldx {
namespace {

class RandomProgramSweep : public ::testing::TestWithParam<int>
{};

TEST_P(RandomProgramSweep, AlignmentInvariantsHold)
{
    std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
    fuzz::ProgramGenerator gen(seed);
    std::string source = gen.generate();
    SCOPED_TRACE("seed " + std::to_string(seed));
    const bool threads = source.find("spawn(") != std::string::npos;

    auto module = lang::compileSource(source);
    instrument::CounterInstrumenter pass(*module);
    pass.run();
    std::int64_t fcnt_main = pass.fcnt().at(module->mainFunction());

    os::WorldSpec world = fuzz::ProgramGenerator::worldFor(seed);

    // Native run on the instrumented module: the final counter must
    // equal FCNT(main) (path-invariance of the instrumentation).
    {
        os::Kernel kernel(world);
        vm::Machine machine(*module, kernel, {});
        ASSERT_EQ(machine.run(), vm::StepStatus::Finished)
            << (machine.trap() ? machine.trap()->message : "");
        EXPECT_EQ(machine.context(0).cnt, fcnt_main);
    }

    // 1. No mutation: perfect alignment despite nondeterminism seeds.
    //    With contended mutexes across guest threads the lock-order
    //    sharing is best effort (§7): a reordered acquisition taints
    //    the mutex and counts a syscall diff but must never produce a
    //    finding, so every clean-run diff must be a lock divergence.
    {
        core::EngineConfig cfg;
        cfg.wallClockCap = 30.0;
        core::DualEngine engine(*module, world, cfg);
        auto res = engine.run();
        ASSERT_FALSE(res.deadlocked);
        std::uint64_t lock_div =
            res.metrics.counterOr("lock.order_diverged");
        EXPECT_EQ(res.syscallDiffs, threads ? lock_div : 0u);
        EXPECT_FALSE(res.causality())
            << res.findings[0].describe() << "\nprogram:\n"
            << source;
    }

    // 2. Mutation: always terminates; diffs are tolerated.
    {
        core::EngineConfig cfg;
        cfg.wallClockCap = 30.0;
        cfg.sources = {core::SourceSpec::file("/input.txt",
                                              seed % 16)};
        core::DualEngine engine(*module, world, cfg);
        auto res = engine.run();
        EXPECT_FALSE(res.deadlocked) << "program:\n" << source;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramSweep,
                         ::testing::Range(1, 41));

} // namespace
} // namespace ldx
