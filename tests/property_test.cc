/**
 * @file
 * Property tests over randomly generated programs.
 *
 * A seeded generator emits random (but terminating, trap-free) MiniC
 * programs mixing bounded loops, branches gated on input bytes,
 * helper calls, recursion, indirect calls, and syscalls. For every
 * seed we check the protocol's core guarantees:
 *
 *  1. no-mutation dual execution aligns perfectly: zero syscall
 *     diffs, zero findings, no deadlock — nondeterminism (clock,
 *     PRNG, pid, heap base) is fully suppressed by outcome sharing;
 *  2. under mutation, dual execution always terminates without
 *     deadlock (path differences are tolerated and realigned);
 *  3. the final counter equals FCNT(main) in every run (the
 *     instrumentation invariant).
 */
#include <gtest/gtest.h>

#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "ldx/engine.h"
#include "os/kernel.h"
#include "support/prng.h"
#include "vm/machine.h"

namespace ldx {
namespace {

/** Emits random structured MiniC programs. */
class ProgramGenerator
{
  public:
    explicit ProgramGenerator(std::uint64_t seed)
        : prng_(seed)
    {}

    std::string
    generate()
    {
        src_.clear();
        src_ += "char inputv[64];\nint acc;\n\n";
        int helpers = 1 + static_cast<int>(prng_.below(3));
        for (int h = 0; h < helpers; ++h)
            emitHelper(h);
        emitRecursive();
        emitMain(helpers);
        return src_;
    }

  private:
    void
    line(const std::string &text)
    {
        src_ += indent_ + text + "\n";
    }

    std::string
    randomExpr()
    {
        switch (prng_.below(5)) {
          case 0:
            return "acc + " + std::to_string(prng_.below(50));
          case 1:
            return "inputv[" + std::to_string(prng_.below(8)) + "] * " +
                   std::to_string(1 + prng_.below(5));
          case 2:
            return "acc * 3 + 1";
          case 3:
            return "acc % 97";
          default:
            return std::to_string(prng_.below(100));
        }
    }

    std::string
    randomCond()
    {
        switch (prng_.below(3)) {
          case 0:
            return "inputv[" + std::to_string(prng_.below(8)) +
                   "] % 2 == 0";
          case 1:
            return "acc % " + std::to_string(2 + prng_.below(5)) +
                   " == 1";
          default:
            return "inputv[" + std::to_string(prng_.below(8)) + "] > " +
                   std::to_string(40 + prng_.below(60));
        }
    }

    void
    emitSyscall()
    {
        switch (prng_.below(4)) {
          case 0:
            line("acc = acc + time() % 7;");
            break;
          case 1:
            line("acc = acc ^ (random() % 1000);");
            break;
          case 2:
            line("acc = acc + getpid() % 13;");
            break;
          default: {
            line("{ int fd = open(\"/data.bin\", 0); char t[4];");
            line("  acc = acc + read(fd, t, 3); close(fd); }");
            break;
          }
        }
    }

    void
    emitBlock(int depth, int fuel)
    {
        int stmts = 1 + static_cast<int>(prng_.below(4));
        for (int i = 0; i < stmts; ++i) {
            switch (prng_.below(6)) {
              case 0:
                line("acc = " + randomExpr() + ";");
                break;
              case 1:
                emitSyscall();
                break;
              case 2:
                if (depth < 2 && fuel > 0) {
                    line("if (" + randomCond() + ") {");
                    indent_ += "    ";
                    emitBlock(depth + 1, fuel - 1);
                    indent_.resize(indent_.size() - 4);
                    if (prng_.chance(1, 2)) {
                        line("} else {");
                        indent_ += "    ";
                        emitBlock(depth + 1, fuel - 1);
                        indent_.resize(indent_.size() - 4);
                    }
                    line("}");
                } else {
                    line("acc = acc + 1;");
                }
                break;
              case 3:
                if (depth < 2 && fuel > 0) {
                    std::string bound =
                        prng_.chance(1, 2)
                            ? std::to_string(2 + prng_.below(6))
                            : "inputv[" + std::to_string(prng_.below(8)) +
                                  "] % 7 + 1";
                    std::string v =
                        "i" + std::to_string(loopVar_++);
                    line("for (int " + v + " = 0; " + v + " < " + bound +
                         "; " + v + " = " + v + " + 1) {");
                    indent_ += "    ";
                    emitBlock(depth + 1, fuel - 1);
                    indent_.resize(indent_.size() - 4);
                    line("}");
                } else {
                    line("acc = acc ^ 5;");
                }
                break;
              case 4:
                // Only call helpers with a smaller id (or none, when
                // emitting helper 0) so helper call chains terminate.
                if (callableHelpers_ > 0) {
                    line("acc = acc + helper" +
                         std::to_string(prng_.below(
                             static_cast<std::uint64_t>(
                                 callableHelpers_))) +
                         "(acc % 50);");
                } else {
                    line("acc = acc * 2 + 1;");
                }
                break;
              default:
                line("acc = acc + rec(inputv[" +
                     std::to_string(prng_.below(8)) + "] % 6);");
                break;
            }
        }
    }

    void
    emitHelper(int id)
    {
        callableHelpers_ = id; // strictly lower ids only
        src_ += "int helper" + std::to_string(id) + "(int p) {\n";
        indent_ = "    ";
        line("int save = acc;");
        line("acc = p;");
        emitBlock(1, 1);
        line("int r = acc;");
        line("acc = save;");
        line("return r % 1000;");
        indent_.clear();
        src_ += "}\n\n";
    }

    void
    emitRecursive()
    {
        src_ += "int rec(int n) {\n";
        src_ += "    if (n <= 0) { return 0; }\n";
        src_ += "    time();\n";
        src_ += "    return n + rec(n - 1);\n";
        src_ += "}\n\n";
    }

    void
    emitMain(int helpers)
    {
        callableHelpers_ = helpers;
        src_ += "int main() {\n";
        indent_ = "    ";
        line("int fd = open(\"/input.txt\", 0);");
        line("int n = read(fd, inputv, 63);");
        line("close(fd);");
        line("acc = n;");
        emitBlock(0, 3);
        line("char out[24];");
        line("itoa(acc % 100000, out);");
        line("int s = socket();");
        line("connect(s, \"sink.example.com\");");
        line("send(s, out, strlen(out));");
        line("return 0;");
        indent_.clear();
        src_ += "}\n";
    }

    Prng prng_;
    std::string src_;
    std::string indent_;
    int loopVar_ = 0;
    int callableHelpers_ = 0;
};

os::WorldSpec
worldFor(std::uint64_t seed)
{
    os::WorldSpec w;
    Prng prng(seed * 77 + 5);
    std::string input;
    for (int i = 0; i < 48; ++i)
        input += static_cast<char>(1 + prng.below(120));
    w.files["/input.txt"] = input;
    w.files["/data.bin"] = "0123456789abcdef";
    w.peers["sink.example.com"] = {};
    return w;
}

class RandomProgramSweep : public ::testing::TestWithParam<int>
{};

TEST_P(RandomProgramSweep, AlignmentInvariantsHold)
{
    std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
    ProgramGenerator gen(seed);
    std::string source = gen.generate();
    SCOPED_TRACE("seed " + std::to_string(seed));

    auto module = lang::compileSource(source);
    instrument::CounterInstrumenter pass(*module);
    pass.run();
    std::int64_t fcnt_main = pass.fcnt().at(module->mainFunction());

    os::WorldSpec world = worldFor(seed);

    // Native run on the instrumented module: the final counter must
    // equal FCNT(main) (path-invariance of the instrumentation).
    {
        os::Kernel kernel(world);
        vm::Machine machine(*module, kernel, {});
        ASSERT_EQ(machine.run(), vm::StepStatus::Finished)
            << (machine.trap() ? machine.trap()->message : "");
        EXPECT_EQ(machine.context(0).cnt, fcnt_main);
    }

    // 1. No mutation: perfect alignment despite nondeterminism seeds.
    {
        core::EngineConfig cfg;
        cfg.wallClockCap = 30.0;
        core::DualEngine engine(*module, world, cfg);
        auto res = engine.run();
        ASSERT_FALSE(res.deadlocked);
        EXPECT_EQ(res.syscallDiffs, 0u);
        EXPECT_FALSE(res.causality())
            << res.findings[0].describe() << "\nprogram:\n"
            << source;
    }

    // 2. Mutation: always terminates; diffs are tolerated.
    {
        core::EngineConfig cfg;
        cfg.wallClockCap = 30.0;
        cfg.sources = {core::SourceSpec::file("/input.txt",
                                              seed % 16)};
        core::DualEngine engine(*module, world, cfg);
        auto res = engine.run();
        EXPECT_FALSE(res.deadlocked) << "program:\n" << source;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramSweep,
                         ::testing::Range(1, 41));

} // namespace
} // namespace ldx
