/**
 * @file
 * `ldx serve` tests (src/serve/): the wire-format JSON parser, the
 * ldx-serve-v1 protocol frames, and the daemon end to end over a
 * real Unix-domain socket — frame order, byte-identical graphs vs
 * the offline campaign, the process-wide warm path, admission
 * control, and the SIGINT drain handshake.
 */
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "query/campaign.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace ldx {
namespace {

// ---------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------

TEST(Wire, ParsesScalarsObjectsAndArrays)
{
    std::string err;
    auto v = serve::parseJson(
        R"({"a":1,"b":"x","c":[true,false,null],"d":{"e":-2.5}})",
        &err);
    ASSERT_TRUE(v.has_value()) << err;
    ASSERT_TRUE(v->isObject());
    EXPECT_EQ(v->uintOr("a", 0), 1u);
    EXPECT_EQ(v->stringOr("b", ""), "x");
    const serve::JsonValue *c = v->find("c");
    ASSERT_NE(c, nullptr);
    ASSERT_TRUE(c->isArray());
    ASSERT_EQ(c->items.size(), 3u);
    EXPECT_TRUE(c->items[0].boolean);
    const serve::JsonValue *d = v->find("d");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->find("e")->number, -2.5);
}

TEST(Wire, DecodesEscapesAndSurrogatePairs)
{
    std::string err;
    auto v = serve::parseJson(
        R"({"s":"a\nb\t\"q\" é 😀"})", &err);
    ASSERT_TRUE(v.has_value()) << err;
    EXPECT_EQ(v->stringOr("s", ""),
              "a\nb\t\"q\" \xc3\xa9 \xf0\x9f\x98\x80");
}

TEST(Wire, RejectsMalformedInput)
{
    std::string err;
    EXPECT_FALSE(serve::parseJson("", &err).has_value());
    EXPECT_FALSE(serve::parseJson("{", &err).has_value());
    EXPECT_FALSE(serve::parseJson("{} trailing", &err).has_value());
    EXPECT_FALSE(serve::parseJson(R"({"a":01x})", &err).has_value());
    EXPECT_FALSE(
        serve::parseJson("{\"s\":\"bad \\q escape\"}", &err)
            .has_value());
    EXPECT_FALSE(
        serve::parseJson(R"({"s":"lone \udc00"})", &err).has_value());
    std::string deep(100, '[');
    deep += std::string(100, ']');
    EXPECT_FALSE(serve::parseJson(deep, &err).has_value());
}

TEST(Wire, UintOrRejectsNegativeAndFractional)
{
    std::string err;
    auto v = serve::parseJson(R"({"a":-1,"b":1.5,"c":3})", &err);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->uintOr("a", 7), 7u);
    EXPECT_EQ(v->uintOr("b", 7), 7u);
    EXPECT_EQ(v->uintOr("c", 7), 3u);
    EXPECT_EQ(v->uintOr("missing", 7), 7u);
}

// ---------------------------------------------------------------------
// Protocol frames
// ---------------------------------------------------------------------

TEST(Protocol, SubmitRoundTripsThroughTheWire)
{
    serve::SubmitRequest req;
    req.id = "job-1";
    req.source = "int main() { return 0; }";
    req.env["SECRET"] = "abc";
    req.files["/in.txt"] = "data\n";
    req.policies = {"off-by-one", "zero"};
    req.offset = 3;
    req.snapshot = true;
    req.threaded = true;
    req.deadlineMs = 1234;

    std::string line = serve::renderSubmit(req);
    std::string err;
    auto frame = serve::parseJson(line, &err);
    ASSERT_TRUE(frame.has_value()) << err;
    auto parsed = serve::parseSubmit(*frame, &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    EXPECT_EQ(parsed->id, req.id);
    EXPECT_EQ(parsed->source, req.source);
    EXPECT_EQ(parsed->env, req.env);
    EXPECT_EQ(parsed->files, req.files);
    EXPECT_EQ(parsed->policies, req.policies);
    EXPECT_EQ(parsed->offset, req.offset);
    EXPECT_TRUE(parsed->snapshot);
    EXPECT_TRUE(parsed->threaded);
    EXPECT_EQ(parsed->deadlineMs, req.deadlineMs);
}

TEST(Protocol, SubmitValidationRejectsBadRequests)
{
    auto parse = [](const std::string &json) {
        std::string err;
        auto frame = serve::parseJson(json, &err);
        EXPECT_TRUE(frame.has_value()) << err;
        return serve::parseSubmit(*frame, &err);
    };
    // Missing id.
    EXPECT_FALSE(parse(R"({"type":"submit","workload":"lynx"})")
                     .has_value());
    // Neither workload nor source.
    EXPECT_FALSE(parse(R"({"type":"submit","id":"j"})").has_value());
    // Both workload and source.
    EXPECT_FALSE(
        parse(
            R"({"type":"submit","id":"j","workload":"w","source":"s"})")
            .has_value());
    // Unknown policy.
    EXPECT_FALSE(
        parse(
            R"({"type":"submit","id":"j","workload":"w","policies":["nope"]})")
            .has_value());
    // Empty policy list.
    EXPECT_FALSE(
        parse(
            R"({"type":"submit","id":"j","workload":"w","policies":[]})")
            .has_value());
    // Non-string env value.
    EXPECT_FALSE(
        parse(
            R"({"type":"submit","id":"j","workload":"w","env":{"K":1}})")
            .has_value());
    // Zero deadline.
    EXPECT_FALSE(
        parse(
            R"({"type":"submit","id":"j","workload":"w","deadline_ms":0})")
            .has_value());
}

TEST(Protocol, FrameRenderingIsDeterministic)
{
    EXPECT_EQ(serve::renderHello(""),
              R"({"type":"hello","proto":"ldx-serve-v1"})");
    EXPECT_EQ(serve::renderAccepted("j", 6),
              R"({"type":"accepted","id":"j","queries":6})");
    EXPECT_EQ(serve::renderDrained(), R"({"type":"drained"})");
    serve::DoneStats stats;
    stats.exit = 1;
    stats.queries = 6;
    stats.cached = 2;
    stats.executed = 4;
    stats.edges = 1;
    EXPECT_EQ(
        serve::renderDone("j", stats),
        R"({"type":"done","id":"j","exit":1,"queries":6,"cached":2,)"
        R"("executed":4,"cancelled":0,"failed":0,"timed_out":0,)"
        R"("edges":1})");
}

// ---------------------------------------------------------------------
// Daemon end to end
// ---------------------------------------------------------------------

constexpr const char *kLeakProgram = R"(int main() {
    char secret[16];
    getenv("SECRET", secret, 16);
    int grade = 0;
    if (secret[0] == 'a') { grade = 1; } else { grade = 2; }
    char out[8];
    itoa(grade, out);
    print(out, strlen(out));
    return 0;
}
)";

/** A live daemon on a fresh socket, drained + joined on scope exit. */
struct TestDaemon
{
    std::filesystem::path dir;
    std::atomic<bool> shutdown{false};
    obs::Registry registry;
    serve::ServeConfig cfg;
    std::unique_ptr<serve::Server> server;
    std::thread thread;
    int serveExit = -1;

    explicit TestDaemon(const std::string &name,
                        std::size_t maxTenants = 4,
                        std::size_t maxJobQueries = 0)
    {
        dir = std::filesystem::temp_directory_path() / name;
        std::filesystem::remove_all(dir);
        std::filesystem::create_directories(dir);
        cfg.socketPath = (dir / "s.sock").string();
        cfg.jobs = 2;
        cfg.maxTenants = maxTenants;
        cfg.maxJobQueries = maxJobQueries;
        cfg.drainTimeoutMs = 10'000;
        cfg.registry = &registry;
        cfg.shutdown = &shutdown;
        server = std::make_unique<serve::Server>(cfg);
        std::string err;
        if (!server->start(&err))
            ADD_FAILURE() << err;
        thread = std::thread([this] { serveExit = server->serve(); });
    }

    void
    drain()
    {
        if (!thread.joinable())
            return;
        shutdown.store(true);
        thread.join();
    }

    ~TestDaemon()
    {
        drain();
        server.reset();
        std::filesystem::remove_all(dir);
    }
};

serve::SubmitOptions
leakJob(const TestDaemon &daemon, const std::string &id)
{
    serve::SubmitOptions opts;
    opts.socketPath = daemon.cfg.socketPath;
    opts.request.id = id;
    opts.request.source = kLeakProgram;
    opts.request.env["SECRET"] = "abc";
    return opts;
}

TEST(Serve, StreamedGraphMatchesTheOfflineCampaign)
{
    TestDaemon daemon("ldx_serve_bytes_test");
    serve::SubmitOptions opts = leakJob(daemon, "job-1");
    opts.graphOut = (daemon.dir / "served.json").string();

    std::ostringstream out, err;
    int rc = serve::runSubmit(opts, out, err);
    EXPECT_EQ(rc, 1) << err.str(); // causality in the leak program
    EXPECT_NE(out.str().find("queries: 3 (0 cached, 3 executed"),
              std::string::npos)
        << out.str();

    // The offline reference: same program, same world, defaults.
    auto module = lang::compileSource(kLeakProgram);
    instrument::CounterInstrumenter pass(*module);
    pass.run();
    os::WorldSpec world;
    world.env["SECRET"] = "abc";
    query::CampaignResult res =
        query::runCampaign(*module, world, query::CampaignConfig{});

    std::ifstream in(opts.graphOut, std::ios::binary);
    std::ostringstream served;
    served << in.rdbuf();
    EXPECT_EQ(served.str(), res.graph.toJson());
    EXPECT_EQ(daemon.server->jobsAccepted(), 1u);
}

TEST(Serve, SecondSubmissionIsServedEntirelyFromTheSharedCache)
{
    TestDaemon daemon("ldx_serve_warm_test");
    std::ostringstream out1, out2, err;
    EXPECT_EQ(serve::runSubmit(leakJob(daemon, "cold"), out1, err), 1);
    EXPECT_NE(out1.str().find("(0 cached, 3 executed"),
              std::string::npos)
        << out1.str();
    // Same program from a "different client": zero dual executions.
    EXPECT_EQ(serve::runSubmit(leakJob(daemon, "warm"), out2, err), 1);
    EXPECT_NE(out2.str().find("(3 cached, 0 executed"),
              std::string::npos)
        << out2.str();
    EXPECT_EQ(
        daemon.registry.counter("serve.dual_executions").value(), 3u);
}

TEST(Serve, ConcurrentTenantsGetByteIdenticalGraphs)
{
    TestDaemon daemon("ldx_serve_tenants_test");
    constexpr int kTenants = 3;
    std::vector<std::thread> clients;
    std::vector<int> rcs(kTenants, -1);
    for (int t = 0; t < kTenants; ++t)
        clients.emplace_back([&, t] {
            serve::SubmitOptions opts =
                leakJob(daemon, "t" + std::to_string(t));
            opts.graphOut =
                (daemon.dir / ("g" + std::to_string(t) + ".json"))
                    .string();
            std::ostringstream out, err;
            rcs[t] = serve::runSubmit(opts, out, err);
        });
    for (std::thread &c : clients)
        c.join();

    std::vector<std::string> graphs;
    for (int t = 0; t < kTenants; ++t) {
        EXPECT_EQ(rcs[t], 1);
        std::ifstream in(daemon.dir /
                             ("g" + std::to_string(t) + ".json"),
                         std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        graphs.push_back(buf.str());
    }
    EXPECT_FALSE(graphs[0].empty());
    for (int t = 1; t < kTenants; ++t)
        EXPECT_EQ(graphs[t], graphs[0]) << "tenant " << t;
}

TEST(Serve, OversizedJobsAreRejectedBeforeExecution)
{
    // The leak program plans 1 source x 3 policies = 3 queries.
    TestDaemon daemon("ldx_serve_cap_test", 4, 2);
    std::ostringstream out, err;
    EXPECT_EQ(serve::runSubmit(leakJob(daemon, "big"), out, err), 2);
    EXPECT_NE(err.str().find("rejected"), std::string::npos)
        << err.str();
    EXPECT_NE(err.str().find("job too large"), std::string::npos)
        << err.str();
    EXPECT_EQ(daemon.server->jobsRejected(), 1u);
    EXPECT_EQ(
        daemon.registry.counter("serve.dual_executions").value(), 0u);
}

TEST(Serve, BadProgramsAreRejectedNotFatal)
{
    TestDaemon daemon("ldx_serve_badprog_test");
    serve::SubmitOptions opts;
    opts.socketPath = daemon.cfg.socketPath;
    opts.request.id = "broken";
    opts.request.source = "int main( { this is not minic";
    std::ostringstream out, err;
    EXPECT_EQ(serve::runSubmit(opts, out, err), 2);
    EXPECT_NE(err.str().find("rejected"), std::string::npos)
        << err.str();
    // The daemon survives and serves the next job normally.
    std::ostringstream out2, err2;
    EXPECT_EQ(serve::runSubmit(leakJob(daemon, "ok"), out2, err2), 1);
}

TEST(Serve, UnknownWorkloadNamesAreRejected)
{
    TestDaemon daemon("ldx_serve_unknown_test");
    serve::SubmitOptions opts;
    opts.socketPath = daemon.cfg.socketPath;
    opts.request.id = "ghost";
    opts.request.workload = "no-such-workload";
    std::ostringstream out, err;
    EXPECT_EQ(serve::runSubmit(opts, out, err), 2);
    EXPECT_NE(err.str().find("unknown workload"), std::string::npos)
        << err.str();
}

/** Raw protocol client: connect, send frames, collect reply lines. */
struct RawClient
{
    int fd = -1;
    std::string buf;

    explicit RawClient(const std::string &path)
    {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) != 0) {
            ::close(fd);
            fd = -1;
        }
    }

    ~RawClient()
    {
        if (fd >= 0)
            ::close(fd);
    }

    void
    send(const std::string &frame)
    {
        std::string line = frame + "\n";
        ASSERT_EQ(::send(fd, line.data(), line.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(line.size()));
    }

    /** Next line; empty on EOF. */
    std::string
    readLine()
    {
        for (;;) {
            std::size_t nl = buf.find('\n');
            if (nl != std::string::npos) {
                std::string line = buf.substr(0, nl);
                buf.erase(0, nl + 1);
                return line;
            }
            char chunk[4096];
            ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
            if (n <= 0)
                return "";
            buf.append(chunk, static_cast<std::size_t>(n));
        }
    }
};

TEST(Serve, FrameOrderIsHelloVerdictsGraphDone)
{
    TestDaemon daemon("ldx_serve_frames_test");
    RawClient client(daemon.cfg.socketPath);
    ASSERT_GE(client.fd, 0);

    serve::SubmitRequest req;
    req.id = "frames";
    req.source = kLeakProgram;
    req.env["SECRET"] = "abc";
    client.send(serve::renderHello(""));
    client.send(serve::renderSubmit(req));

    std::vector<std::string> types;
    std::vector<std::uint64_t> verdictIndices;
    for (;;) {
        std::string line = client.readLine();
        ASSERT_FALSE(line.empty()) << "connection dropped early";
        std::string err;
        auto frame = serve::parseJson(line, &err);
        ASSERT_TRUE(frame.has_value()) << err << ": " << line;
        std::string type = frame->stringOr("type", "");
        types.push_back(type);
        if (type == "verdict")
            verdictIndices.push_back(frame->uintOr("query", 99));
        if (type == "done")
            break;
    }
    ASSERT_GE(types.size(), 6u);
    EXPECT_EQ(types.front(), "hello");
    EXPECT_EQ(types[1], "accepted");
    EXPECT_EQ(types[types.size() - 2], "graph");
    EXPECT_EQ(types.back(), "done");
    // Verdicts stream in strict query-index order.
    ASSERT_EQ(verdictIndices.size(), 3u);
    for (std::size_t i = 0; i < verdictIndices.size(); ++i)
        EXPECT_EQ(verdictIndices[i], i);
}

TEST(Serve, DrainSendsTerminalFrameToIdleClients)
{
    TestDaemon daemon("ldx_serve_drain_test");
    RawClient client(daemon.cfg.socketPath);
    ASSERT_GE(client.fd, 0);
    client.send(serve::renderHello(""));
    std::string hello = client.readLine();
    EXPECT_NE(hello.find("\"hello\""), std::string::npos);

    daemon.drain();
    EXPECT_EQ(daemon.serveExit, 0);
    // The connected-but-idle client got exactly one terminal frame.
    std::string last = client.readLine();
    EXPECT_EQ(last, serve::renderDrained());
    EXPECT_EQ(client.readLine(), ""); // then EOF
    EXPECT_EQ(daemon.registry.gauge("serve.draining").value(), 2.0);
}

} // namespace
} // namespace ldx
