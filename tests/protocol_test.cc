/**
 * @file
 * Unit tests of the coupling protocol internals: the hierarchical
 * progress comparison (counter stacks, §6), the kernel replay path
 * the slave uses to copy master outcomes, and the TightLip trace
 * matcher.
 */
#include <gtest/gtest.h>

#include "ldx/channel.h"
#include "os/kernel.h"
#include "taint/tightlip.h"
#include "vm/memory.h"

namespace ldx {
namespace {

using core::Progress;
using core::compareProgress;

// ----------------------------------------------- progress comparison

TEST(ProgressTest, FlatComparison)
{
    EXPECT_EQ(compareProgress({}, 5, {}, 3), Progress::Passed);
    EXPECT_EQ(compareProgress({}, 3, {}, 5), Progress::Behind);
    EXPECT_EQ(compareProgress({}, 4, {}, 4), Progress::Same);
}

TEST(ProgressTest, DeeperPeerWithEqualPrefixIsUnknown)
{
    // Peer is inside an indirect call launched at my current level:
    // its in-callee counter says nothing about my level.
    EXPECT_EQ(compareProgress({4}, 2, {}, 4), Progress::Unknown);
}

TEST(ProgressTest, ShallowerPeerWithEqualPrefixIsUnknown)
{
    // I'm inside the callee; the peer sits at the call level.
    EXPECT_EQ(compareProgress({}, 4, {4}, 2), Progress::Unknown);
}

TEST(ProgressTest, OuterLevelDecidesBeforeDepth)
{
    // Peer passed my call site at the outer level: decisive even
    // though I'm deep inside a callee.
    EXPECT_EQ(compareProgress({}, 9, {4, 1}, 2), Progress::Passed);
    EXPECT_EQ(compareProgress({}, 2, {4, 1}, 2), Progress::Behind);
}

TEST(ProgressTest, SameDepthInnerLevelDecides)
{
    EXPECT_EQ(compareProgress({4}, 3, {4}, 1), Progress::Passed);
    EXPECT_EQ(compareProgress({4}, 1, {4}, 3), Progress::Behind);
    EXPECT_EQ(compareProgress({4}, 2, {4}, 2), Progress::Same);
    // Different saved counters at the outer level decide first.
    EXPECT_EQ(compareProgress({5}, 0, {4}, 9), Progress::Passed);
}

// --------------------------------------------------- kernel replay

class ReplayFixture : public ::testing::Test
{
  protected:
    ReplayFixture()
        : mem_(4096, 1 << 12, 1, 0)
    {
        spec_.files["/f.txt"] = "hello world";
        spec_.env["K"] = "v";
        spec_.peers["h"].responses = {"r0", "r1"};
        master_ = std::make_unique<os::Kernel>(spec_);
        slave_ = std::make_unique<os::Kernel>(spec_);
    }

    /** Write a NUL-terminated string into guest memory. */
    std::uint64_t
    guestString(const std::string &s, std::uint64_t at)
    {
        mem_.writeBytes(at, s + '\0');
        return at;
    }

    os::WorldSpec spec_;
    vm::Memory mem_;
    std::unique_ptr<os::Kernel> master_;
    std::unique_ptr<os::Kernel> slave_;
    static constexpr std::uint64_t kBuf = vm::Memory::kGlobalsBase;
};

TEST_F(ReplayFixture, OpenReadReplayKeepsOffsetsInSync)
{
    auto path = guestString("/f.txt", kBuf);
    std::vector<std::int64_t> open_args = {
        static_cast<std::int64_t>(path), 0};
    os::Outcome open_out = master_->execute(
        static_cast<std::int64_t>(os::Sys::Open), open_args, mem_);
    ASSERT_GE(open_out.ret, 0);
    EXPECT_TRUE(slave_->replay(static_cast<std::int64_t>(os::Sys::Open),
                               open_args, open_out, mem_));

    std::vector<std::int64_t> read_args = {
        open_out.ret, static_cast<std::int64_t>(kBuf + 64), 5};
    os::Outcome read_out = master_->execute(
        static_cast<std::int64_t>(os::Sys::Read), read_args, mem_);
    EXPECT_EQ(read_out.data, "hello");
    EXPECT_TRUE(slave_->replay(static_cast<std::int64_t>(os::Sys::Read),
                               read_args, read_out, mem_));
    EXPECT_EQ(mem_.readBytes(kBuf + 64, 5), "hello");

    // After the replayed read, a *local* slave read continues at the
    // right offset — the clone stayed consistent.
    os::Outcome local = slave_->execute(
        static_cast<std::int64_t>(os::Sys::Read), read_args, mem_);
    EXPECT_EQ(local.data, " worl");
}

TEST_F(ReplayFixture, ReplayOnUnknownFdFails)
{
    os::Outcome fake;
    fake.ret = 4;
    fake.data = "xx";
    std::vector<std::int64_t> args = {
        99, static_cast<std::int64_t>(kBuf), 2};
    EXPECT_FALSE(slave_->replay(
        static_cast<std::int64_t>(os::Sys::Read), args, fake, mem_));
}

TEST_F(ReplayFixture, ReplayOpenMissingFileFails)
{
    auto path = guestString("/nope", kBuf);
    os::Outcome out;
    out.ret = 5; // master opened something the slave world lacks
    std::vector<std::int64_t> args = {static_cast<std::int64_t>(path),
                                      0};
    EXPECT_FALSE(slave_->replay(
        static_cast<std::int64_t>(os::Sys::Open), args, out, mem_));
}

TEST_F(ReplayFixture, NondetReplayAdvancesLocalState)
{
    // Replaying a Random consumes the slave PRNG draw so a later
    // decoupled call does not replay history.
    os::Outcome master_draw = master_->execute(
        static_cast<std::int64_t>(os::Sys::Random), {}, mem_);
    EXPECT_TRUE(slave_->replay(
        static_cast<std::int64_t>(os::Sys::Random), {}, master_draw,
        mem_));
    os::Outcome slave_second = slave_->execute(
        static_cast<std::int64_t>(os::Sys::Random), {}, mem_);
    os::Outcome master_second = master_->execute(
        static_cast<std::int64_t>(os::Sys::Random), {}, mem_);
    // Same seed (same spec here), so the sequences agree position by
    // position: the replay consumed exactly one draw.
    EXPECT_EQ(slave_second.ret, master_second.ret);
}

TEST_F(ReplayFixture, WriteReplayAppliesSlavePayloadSuppressed)
{
    slave_->setSuppressOutputs(true);
    auto path = guestString("/out.txt", kBuf);
    std::vector<std::int64_t> open_args = {
        static_cast<std::int64_t>(path), 1};
    os::Outcome open_out = master_->execute(
        static_cast<std::int64_t>(os::Sys::Open), open_args, mem_);
    ASSERT_TRUE(slave_->replay(static_cast<std::int64_t>(os::Sys::Open),
                               open_args, open_out, mem_));

    mem_.writeBytes(kBuf + 64, "DATA");
    std::vector<std::int64_t> wargs = {
        open_out.ret, static_cast<std::int64_t>(kBuf + 64), 4};
    os::Outcome wout = master_->execute(
        static_cast<std::int64_t>(os::Sys::Write), wargs, mem_);
    ASSERT_TRUE(slave_->replay(static_cast<std::int64_t>(os::Sys::Write),
                               wargs, wout, mem_));

    // The slave's clone holds the data, but its journal marks the
    // output as suppressed (not externally visible).
    EXPECT_EQ(slave_->vfs().content("/out.txt"), "DATA");
    ASSERT_FALSE(slave_->outputs().empty());
    EXPECT_TRUE(slave_->outputs().back().suppressed);
    EXPECT_FALSE(master_->outputs().back().suppressed);
}

TEST_F(ReplayFixture, AcceptReplayConsumesIncomingQueue)
{
    os::WorldSpec spec = spec_;
    spec.incoming.push_back({"REQ"});
    os::Kernel m(spec), s(spec);

    auto sock = m.execute(static_cast<std::int64_t>(os::Sys::Socket),
                          {}, mem_);
    ASSERT_TRUE(s.replay(static_cast<std::int64_t>(os::Sys::Socket), {},
                         sock, mem_));
    std::vector<std::int64_t> largs = {sock.ret, 80};
    auto listen = m.execute(static_cast<std::int64_t>(os::Sys::Listen),
                            largs, mem_);
    ASSERT_TRUE(s.replay(static_cast<std::int64_t>(os::Sys::Listen),
                         largs, listen, mem_));
    std::vector<std::int64_t> aargs = {sock.ret};
    auto conn = m.execute(static_cast<std::int64_t>(os::Sys::Accept),
                          aargs, mem_);
    ASSERT_GE(conn.ret, 0);
    ASSERT_TRUE(s.replay(static_cast<std::int64_t>(os::Sys::Accept),
                         aargs, conn, mem_));
    // Queue consumed on both sides: the next accept sees -1 and its
    // replay agrees.
    auto conn2 = m.execute(static_cast<std::int64_t>(os::Sys::Accept),
                           aargs, mem_);
    EXPECT_EQ(conn2.ret, -1);
    EXPECT_TRUE(s.replay(static_cast<std::int64_t>(os::Sys::Accept),
                         aargs, conn2, mem_));
}

// --------------------------------------------------------- tightlip

taint::TraceRecord
rec(std::int64_t sys, std::string sig, std::string payload = "")
{
    taint::TraceRecord r;
    r.sysNo = sys;
    r.signature = std::move(sig);
    r.payload = payload;
    r.isOutput = !payload.empty();
    return r;
}

TEST(TightLipUnitTest, ExactMatch)
{
    std::vector<taint::TraceRecord> a = {rec(1, "open"), rec(2, "read")};
    auto res = taint::compareTracesTightLip(a, a, 4);
    EXPECT_FALSE(res.leakReported);
    EXPECT_EQ(res.matchedPrefix, 2u);
    EXPECT_EQ(res.syscallDiffs, 0u);
}

TEST(TightLipUnitTest, SkewWithinWindowTolerated)
{
    std::vector<taint::TraceRecord> a = {rec(1, "open"), rec(2, "read"),
                                         rec(3, "close")};
    std::vector<taint::TraceRecord> b = {rec(1, "open"), rec(9, "time"),
                                         rec(2, "read"),
                                         rec(3, "close")};
    auto res = taint::compareTracesTightLip(a, b, 4);
    EXPECT_FALSE(res.leakReported);
    EXPECT_GT(res.syscallDiffs, 0u);
}

TEST(TightLipUnitTest, DivergenceBeyondWindowReported)
{
    std::vector<taint::TraceRecord> a = {rec(1, "open")};
    std::vector<taint::TraceRecord> b;
    for (int i = 0; i < 10; ++i)
        b.push_back(rec(9, "noise" + std::to_string(i)));
    b.push_back(rec(1, "open"));
    auto res = taint::compareTracesTightLip(a, b, 4);
    EXPECT_TRUE(res.leakReported);
    EXPECT_TRUE(res.alignmentFailed);
}

TEST(TightLipUnitTest, OutputPayloadDifferenceIsLeak)
{
    std::vector<taint::TraceRecord> a = {rec(3, "write", "AAA")};
    std::vector<taint::TraceRecord> b = {rec(3, "write", "BBB")};
    auto res = taint::compareTracesTightLip(a, b, 4);
    EXPECT_TRUE(res.leakReported);
    EXPECT_TRUE(res.payloadDiffered);
}

TEST(TightLipUnitTest, TailLengthDifference)
{
    std::vector<taint::TraceRecord> a = {rec(1, "open")};
    std::vector<taint::TraceRecord> b = {rec(1, "open"), rec(2, "x"),
                                         rec(2, "x"), rec(2, "x"),
                                         rec(2, "x"), rec(2, "x")};
    auto res = taint::compareTracesTightLip(a, b, 4);
    EXPECT_TRUE(res.leakReported);
    EXPECT_EQ(res.syscallDiffs, 5u);
}

} // namespace
} // namespace ldx
