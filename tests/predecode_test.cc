/**
 * @file
 * Predecoded fast-path differential tests: the predecoded dispatch
 * loop must retire bit-identical state to the seed per-step
 * interpreter — same instruction counts and mix, same counter
 * statistics, same exits and traps, and (through the lockstep dual
 * driver, the oracle) the same causality verdict on every workload.
 */
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "ldx/engine.h"
#include "obs/recorder.h"
#include "os/kernel.h"
#include "vm/machine.h"
#include "vm/predecode.h"
#include "workloads/workloads.h"

namespace ldx {
namespace {

using core::DualResult;
using core::EngineConfig;
using workloads::Workload;

/** Field-by-field MachineStats comparison with a labelled context. */
void
expectSameStats(const vm::MachineStats &a, const vm::MachineStats &b,
                const std::string &what)
{
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.syscalls, b.syscalls) << what;
    EXPECT_EQ(a.maxCnt, b.maxCnt) << what;
    EXPECT_DOUBLE_EQ(a.avgCnt, b.avgCnt) << what;
    EXPECT_EQ(a.maxCntDepth, b.maxCntDepth) << what;
    EXPECT_EQ(a.barriers, b.barriers) << what;
    EXPECT_EQ(a.mixData, b.mixData) << what;
    EXPECT_EQ(a.mixAlu, b.mixAlu) << what;
    EXPECT_EQ(a.mixMem, b.mixMem) << what;
    EXPECT_EQ(a.mixCall, b.mixCall) << what;
    EXPECT_EQ(a.mixBranch, b.mixBranch) << what;
    EXPECT_EQ(a.mixSyscall, b.mixSyscall) << what;
    EXPECT_EQ(a.mixCounter, b.mixCounter) << what;
}

class PredecodeDifferential : public ::testing::TestWithParam<std::string>
{
  protected:
    const Workload &
    workload() const
    {
        const Workload *w = workloads::findWorkload(GetParam());
        EXPECT_NE(w, nullptr);
        return *w;
    }
};

/** Single-VM native run: legacy step() path vs predecoded path. */
TEST_P(PredecodeDifferential, NativeRunMatchesLegacy)
{
    const Workload &w = workload();
    const ir::Module &module = workloads::workloadModule(w, true);

    auto run = [&](bool predecode, vm::MachineStats &stats,
                   std::int64_t &exit_code, std::string &trap) {
        os::Kernel kernel(w.world(w.defaultScale));
        vm::MachineConfig cfg;
        cfg.predecode = predecode;
        vm::Machine m(module, kernel, cfg);
        m.run();
        stats = m.stats();
        exit_code = m.exitCode();
        trap = m.trap() ? m.trap()->message : "";
    };

    vm::MachineStats legacy_stats, fast_stats;
    std::int64_t legacy_exit = 0, fast_exit = 0;
    std::string legacy_trap, fast_trap;
    run(false, legacy_stats, legacy_exit, legacy_trap);
    run(true, fast_stats, fast_exit, fast_trap);

    EXPECT_EQ(legacy_exit, fast_exit);
    EXPECT_EQ(legacy_trap, fast_trap);
    expectSameStats(legacy_stats, fast_stats, w.name);
}

/**
 * Dual lockstep run (the deterministic oracle): the full DualResult —
 * verdict, findings, alignment tallies, both sides' retired state —
 * must be identical with and without predecoding.
 */
TEST_P(PredecodeDifferential, DualLockstepMatchesLegacy)
{
    const Workload &w = workload();
    const ir::Module &module = workloads::workloadModule(w, true);

    auto run = [&](bool predecode) {
        EngineConfig cfg;
        cfg.sinks = w.sinks;
        cfg.sources = w.sources;
        cfg.threaded = false;
        cfg.wallClockCap = 60.0;
        cfg.vmConfig.predecode = predecode;
        core::DualEngine engine(module, w.world(w.defaultScale), cfg);
        return engine.run();
    };

    DualResult legacy = run(false);
    DualResult fast = run(true);

    EXPECT_EQ(legacy.deadlocked, fast.deadlocked) << w.name;
    EXPECT_EQ(legacy.alignedSyscalls, fast.alignedSyscalls) << w.name;
    EXPECT_EQ(legacy.syscallDiffs, fast.syscallDiffs) << w.name;
    EXPECT_EQ(legacy.totalSlaveSyscalls, fast.totalSlaveSyscalls)
        << w.name;
    EXPECT_EQ(legacy.barrierPairings, fast.barrierPairings) << w.name;
    EXPECT_EQ(legacy.masterExit, fast.masterExit) << w.name;
    EXPECT_EQ(legacy.slaveExit, fast.slaveExit) << w.name;
    EXPECT_EQ(legacy.masterTrapped, fast.masterTrapped) << w.name;
    EXPECT_EQ(legacy.slaveTrapped, fast.slaveTrapped) << w.name;
    EXPECT_EQ(legacy.masterTrapMessage, fast.masterTrapMessage)
        << w.name;
    EXPECT_EQ(legacy.slaveTrapMessage, fast.slaveTrapMessage) << w.name;
    expectSameStats(legacy.masterStats, fast.masterStats,
                    w.name + "/master");
    expectSameStats(legacy.slaveStats, fast.slaveStats,
                    w.name + "/slave");
    EXPECT_EQ(legacy.taintedResources, fast.taintedResources) << w.name;

    ASSERT_EQ(legacy.findings.size(), fast.findings.size()) << w.name;
    for (std::size_t i = 0; i < legacy.findings.size(); ++i)
        EXPECT_EQ(legacy.findings[i].describe(),
                  fast.findings[i].describe())
            << w.name << " finding " << i;
}

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names;
    for (const Workload &w : workloads::allWorkloads())
        names.push_back(w.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, PredecodeDifferential,
    ::testing::ValuesIn(allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

// ---------------------------------------------------------------------
// Structural invariants of the decoded stream.
// ---------------------------------------------------------------------

TEST(PredecodeTest, DecodedStreamMirrorsFunctionLayout)
{
    const Workload *w = workloads::findWorkload("401.bzip2");
    ASSERT_NE(w, nullptr);
    const ir::Module &module = workloads::workloadModule(*w, true);

    for (int fn = 0; fn < static_cast<int>(module.numFunctions());
         ++fn) {
        const ir::Function &f = module.function(fn);
        vm::DecodedFunction df(f);

        std::size_t total = 0;
        for (std::size_t b = 0; b < f.numBlocks(); ++b) {
            ASSERT_EQ(df.blockStart(static_cast<int>(b)), total);
            total += f.block(static_cast<int>(b)).instrs().size();
        }
        ASSERT_EQ(df.numInstrs(), total);

        const vm::DecodedInstr *code = df.code();
        for (std::size_t i = 0; i < df.numInstrs(); ++i) {
            const vm::DecodedInstr &d = code[i];
            // (block, ip) coordinates invert the flattening.
            ASSERT_EQ(df.blockStart(d.block) +
                          static_cast<std::uint32_t>(d.ip),
                      i);
            ASSERT_EQ(&f.block(d.block).instrs()[static_cast<
                          std::size_t>(d.ip)],
                      d.src);
            // Branch targets are pre-resolved to flat indices.
            if (d.op == ir::Opcode::Br) {
                ASSERT_EQ(d.target0,
                          static_cast<std::int32_t>(
                              df.blockStart(d.src->target0)));
            }
            if (d.op == ir::Opcode::CondBr) {
                ASSERT_EQ(d.target0,
                          static_cast<std::int32_t>(
                              df.blockStart(d.src->target0)));
                ASSERT_EQ(d.target1,
                          static_cast<std::int32_t>(
                              df.blockStart(d.src->target1)));
            }
            // Fast instructions carry consistent run metadata: the
            // whole [i, i + runLen) range is fast, within one block,
            // and a canonical head's histogram sums to its run length.
            if (!d.isSlow()) {
                ASSERT_GE(d.runLen, 1u);
                for (std::uint16_t k = 0; k < d.runLen; ++k) {
                    ASSERT_FALSE(code[i + k].isSlow());
                    ASSERT_EQ(code[i + k].block, d.block);
                }
                if (d.histIdx >= 0) {
                    std::uint64_t sum = 0;
                    for (const auto &[op, n] : df.hist(d.histIdx))
                        sum += n;
                    ASSERT_EQ(sum, d.runLen);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// stepMany batch boundaries: the batch size is a pure scheduling
// knob. Whatever budget the driver hands stepMany — one instruction,
// a prime that lands mid-run, the production quantum, or the whole
// program — retirement, counters, and the recorded event order must
// not move.
// ---------------------------------------------------------------------

// 0 encodes "unbounded" in both harnesses below.
constexpr std::uint64_t kBatchSizes[] = {1, 7, 64, 0};

/** Native single-VM run driven by stepMany with a fixed budget. */
TEST(StepManyBatchTest, NativeFinalStateIndependentOfBatchSize)
{
    const Workload *w = workloads::findWorkload("401.bzip2");
    ASSERT_NE(w, nullptr);
    const ir::Module &module = workloads::workloadModule(*w, true);

    struct Outcome
    {
        std::int64_t exit = 0;
        std::int64_t cnt = 0;
        vm::MachineStats stats;
    };
    auto run = [&](std::uint64_t batch) {
        os::Kernel kernel(w->world(w->defaultScale));
        vm::Machine m(module, kernel, {});
        m.start();
        std::uint64_t budget =
            batch ? batch : std::numeric_limits<std::uint64_t>::max();
        vm::StepStatus st = vm::StepStatus::Progress;
        while (st == vm::StepStatus::Progress) {
            std::uint64_t got = 0;
            st = m.stepMany(budget, got);
        }
        EXPECT_EQ(st, vm::StepStatus::Finished)
            << (m.trap() ? m.trap()->message : "");
        Outcome o;
        o.exit = m.exitCode();
        o.cnt = m.context(0).cnt;
        o.stats = m.stats();
        return o;
    };

    Outcome ref = run(64);
    EXPECT_GT(ref.cnt, 0);
    for (std::uint64_t batch : kBatchSizes) {
        SCOPED_TRACE("batch " + std::to_string(batch));
        Outcome o = run(batch);
        EXPECT_EQ(o.exit, ref.exit);
        EXPECT_EQ(o.cnt, ref.cnt); // final-counter invariant
        expectSameStats(o.stats, ref.stats,
                        "batch " + std::to_string(batch));
    }
}

/**
 * Dual lockstep run at each quantum: verdict, alignment tallies, and
 * the flight recorder's event sequence (everything except wall-clock
 * timestamps) must be identical.
 */
TEST(StepManyBatchTest, RecorderEventOrderIndependentOfBatchSize)
{
    const Workload *w = workloads::findWorkload("gif2png");
    ASSERT_NE(w, nullptr);
    const ir::Module &module = workloads::workloadModule(*w, true);

    auto run = [&](std::uint64_t quantum) {
        EngineConfig cfg;
        cfg.sinks = w->sinks;
        cfg.sources = w->sources;
        cfg.flightRecorder = true;
        cfg.wallClockCap = 60.0;
        cfg.lockstepQuantum = quantum;
        core::DualEngine engine(module, w->world(w->defaultScale), cfg);
        return engine.run();
    };

    auto eventKey = [](const obs::RecEvent &e) {
        std::ostringstream os;
        os << obs::recKindName(e.kind) << " tid=" << e.tid
           << " cnt=" << e.cnt << " site=" << e.site
           << " sys=" << e.sysNo << " arg=" << e.arg;
        return os.str();
    };
    auto timeline = [&](const DualResult &res, int side) {
        std::vector<std::string> keys;
        for (const obs::RecEvent &e : res.divergence.events[side])
            keys.push_back(eventKey(e));
        return keys;
    };

    DualResult ref = run(64);
    ASSERT_TRUE(ref.divergence.present);
    for (std::uint64_t quantum : kBatchSizes) {
        SCOPED_TRACE("quantum " + std::to_string(quantum));
        DualResult res = run(quantum);
        EXPECT_EQ(res.causality(), ref.causality());
        EXPECT_EQ(res.syscallDiffs, ref.syscallDiffs);
        EXPECT_EQ(res.alignedSyscalls, ref.alignedSyscalls);
        EXPECT_EQ(res.masterExit, ref.masterExit);
        EXPECT_EQ(res.slaveExit, ref.slaveExit);
        ASSERT_TRUE(res.divergence.present);
        EXPECT_EQ(timeline(res, 0), timeline(ref, 0));
        EXPECT_EQ(timeline(res, 1), timeline(ref, 1));
        ASSERT_EQ(res.findings.size(), ref.findings.size());
        for (std::size_t i = 0; i < res.findings.size(); ++i)
            EXPECT_EQ(res.findings[i].describe(),
                      ref.findings[i].describe());
    }
}

} // namespace
} // namespace ldx
