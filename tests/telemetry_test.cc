/**
 * @file
 * Campaign telemetry tests: the span-correlation contract (every
 * query emits exactly one `query.probe` span plus exactly one
 * terminal marker), the disposition fold (campaign.queries.* counters
 * partition the query set), the exporter/progress surfaces, the
 * profiler report — and the guarantee that none of it perturbs the
 * campaign's deterministic graph output.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "obs/exporter.h"
#include "query/campaign.h"
#include "query/profile.h"

namespace ldx {
namespace {

using query::CampaignConfig;
using query::CampaignResult;

/** Compile + instrument once per source text. */
const ir::Module &
instrumentedModule(const std::string &source)
{
    static std::map<std::string, std::unique_ptr<ir::Module>> cache;
    auto it = cache.find(source);
    if (it == cache.end()) {
        auto module = lang::compileSource(source);
        instrument::CounterInstrumenter pass(*module);
        pass.run();
        it = cache.emplace(source, std::move(module)).first;
    }
    return *it->second;
}

const char *kTelemetryProgram = R"(
int main() {
    char secret[16];
    getenv("SECRET", secret, 16);
    char buf[8];
    int fd = open("/data.txt", 0);
    read(fd, buf, 4);
    char out[8];
    itoa(secret[0] + buf[0], out);
    print(out, strlen(out));
    return 0;
}
)";

os::WorldSpec
telemetryWorld()
{
    os::WorldSpec world;
    world.env["SECRET"] = "abc";
    world.files["/data.txt"] = "data";
    return world;
}

/** Thread-safe in-memory sink (workers emit concurrently). */
class CollectingSink : public obs::TraceSink
{
  public:
    void
    emit(const obs::TraceRecord &rec) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        records_.push_back(rec);
    }

    void setLaneName(int, const std::string &) override {}
    void flush() override {}

    std::vector<obs::TraceRecord>
    records() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return records_;
    }

  private:
    mutable std::mutex mutex_;
    std::vector<obs::TraceRecord> records_;
};

/** Span id carried by @p rec (-1 when absent). */
std::int64_t
spanOf(const obs::TraceRecord &rec)
{
    for (const auto &[k, v] : rec.numArgs)
        if (k == "span")
            return v;
    return -1;
}

/**
 * Per-query span census of @p sink: probe count and terminal-marker
 * count (`query.cached` / `query.exec` / `query.cancelled`) per span
 * id, plus the exec-span count for callers that pin dispositions.
 */
struct SpanCensus
{
    std::map<std::int64_t, int> probes;
    std::map<std::int64_t, int> terminals;
    std::map<std::int64_t, int> execs;
};

SpanCensus
census(const CollectingSink &sink)
{
    SpanCensus c;
    for (const obs::TraceRecord &rec : sink.records()) {
        std::int64_t span = spanOf(rec);
        if (rec.name == "query.probe")
            ++c.probes[span];
        else if (rec.name == "query.cached" ||
                 rec.name == "query.cancelled")
            ++c.terminals[span];
        else if (rec.name == "query.exec") {
            ++c.terminals[span];
            ++c.execs[span];
        }
    }
    return c;
}

/**
 * The load-bearing invariants, checked after every campaign below:
 * exactly one probe span and one terminal marker per query, and the
 * mutually exclusive campaign.queries.* counters partition the set.
 */
void
checkInvariants(const CampaignResult &res, const CollectingSink &sink,
                const obs::Registry &reg)
{
    SpanCensus c = census(sink);
    for (std::size_t i = 0; i < res.queries.size(); ++i) {
        auto span = static_cast<std::int64_t>(i);
        EXPECT_EQ(c.probes[span], 1) << "query " << i;
        EXPECT_EQ(c.terminals[span], 1) << "query " << i;
    }
    EXPECT_EQ(c.probes.size(), res.queries.size());
    EXPECT_EQ(c.terminals.size(), res.queries.size());

    obs::MetricsSnapshot snap = reg.snapshot();
    std::uint64_t folded =
        snap.counterOr("campaign.queries.completed") +
        snap.counterOr("campaign.queries.cached") +
        snap.counterOr("campaign.queries.timed_out") +
        snap.counterOr("campaign.queries.cancelled") +
        snap.counterOr("campaign.queries.failed");
    EXPECT_EQ(folded, res.queries.size());
    EXPECT_EQ(snap.counterOr("campaign.queries.total"),
              res.queries.size());
    EXPECT_EQ(snap.gaugeOr("campaign.queries.planned"),
              static_cast<double>(res.queries.size()));
}

CampaignConfig
baseConfig(obs::Registry *reg, obs::TraceSink *sink)
{
    CampaignConfig cfg;
    cfg.registry = reg;
    cfg.traceSink = sink;
    return cfg;
}

// ---------------------------------------------------------------------
// Span + fold invariants across dispositions
// ---------------------------------------------------------------------

class TelemetryJobs : public ::testing::TestWithParam<int>
{};

TEST_P(TelemetryJobs, CompletedQueriesSpanAndFold)
{
    obs::Registry reg;
    CollectingSink sink;
    CampaignConfig cfg = baseConfig(&reg, &sink);
    cfg.jobs = GetParam();
    CampaignResult res = runCampaign(
        instrumentedModule(kTelemetryProgram), telemetryWorld(), cfg);

    ASSERT_EQ(res.queries.size(), 6u); // 2 sources x 3 policies
    checkInvariants(res, sink, reg);

    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counterOr("campaign.queries.completed"), 6u);
    EXPECT_EQ(snap.counterOr("campaign.queries.cached"), 0u);
    EXPECT_EQ(census(sink).execs.size(), 6u);

    // The engine-tally fold matches the per-query verdicts.
    std::uint64_t aligned = 0, diffs = 0, findings = 0;
    for (const auto &v : res.verdicts) {
        ASSERT_TRUE(v.has_value());
        aligned += v->alignedSyscalls;
        diffs += v->syscallDiffs;
        findings += v->findings;
    }
    EXPECT_EQ(snap.counterOr("campaign.dual.aligned_syscalls"), aligned);
    EXPECT_EQ(snap.counterOr("campaign.dual.syscall_diffs"), diffs);
    EXPECT_EQ(snap.counterOr("campaign.dual.findings"), findings);
    EXPECT_GT(aligned, 0u);

    // Exec latency histogram saw every executed query.
    for (const obs::HistogramSnapshot &h : snap.histograms)
        if (h.name == "campaign.query_seconds")
            EXPECT_EQ(h.count, 6u);
}

TEST_P(TelemetryJobs, CachedQueriesSpanAndFold)
{
    obs::Registry reg;
    CollectingSink sink;
    CampaignConfig cfg = baseConfig(nullptr, nullptr);
    std::string dir = std::filesystem::temp_directory_path() /
                      ("ldx_telem_cache_j" +
                       std::to_string(GetParam()));
    std::filesystem::remove_all(dir);
    cfg.cacheDir = dir;
    runCampaign(instrumentedModule(kTelemetryProgram),
                telemetryWorld(), cfg);

    cfg = baseConfig(&reg, &sink);
    cfg.jobs = GetParam();
    cfg.cacheDir = dir;
    CampaignResult res = runCampaign(
        instrumentedModule(kTelemetryProgram), telemetryWorld(), cfg);
    std::filesystem::remove_all(dir);

    EXPECT_EQ(res.dualExecutions, 0u);
    checkInvariants(res, sink, reg);
    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counterOr("campaign.queries.cached"), 6u);
    EXPECT_EQ(snap.counterOr("campaign.queries.completed"), 0u);
    EXPECT_TRUE(census(sink).execs.empty());
}

TEST_P(TelemetryJobs, PreCancelledQueriesSpanAndFold)
{
    obs::Registry reg;
    CollectingSink sink;
    std::atomic<bool> cancel{true}; // latch set before the pool starts
    CampaignConfig cfg = baseConfig(&reg, &sink);
    cfg.jobs = GetParam();
    cfg.cancel = &cancel;
    CampaignResult res = runCampaign(
        instrumentedModule(kTelemetryProgram), telemetryWorld(), cfg);

    checkInvariants(res, sink, reg);
    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counterOr("campaign.queries.cancelled"), 6u);
    EXPECT_EQ(res.cancelledQueries, 6u);
    EXPECT_TRUE(census(sink).execs.empty());
}

TEST_P(TelemetryJobs, TimedOutQueriesSpanAndFold)
{
    obs::Registry reg;
    CollectingSink sink;
    CampaignConfig cfg = baseConfig(&reg, &sink);
    cfg.jobs = GetParam();
    // The threaded supervisor polls the wall-clock cap unconditionally,
    // so a sub-microsecond deadline reliably times every query out.
    cfg.threaded = true;
    cfg.deadlineSeconds = 1e-9;
    CampaignResult res = runCampaign(
        instrumentedModule(kTelemetryProgram), telemetryWorld(), cfg);

    checkInvariants(res, sink, reg);
    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counterOr("campaign.queries.timed_out"), 6u);
    EXPECT_EQ(res.timedOutQueries, 6u);
    // Timed-out queries still executed: their terminal is query.exec.
    EXPECT_EQ(census(sink).execs.size(), 6u);
}

TEST_P(TelemetryJobs, MidCampaignCancelKeepsInvariants)
{
    // Flip the latch while the pool is draining — the moment the
    // first query completes — and check that whatever mix of
    // completed/cancelled results is still folded and span-covered
    // exactly once per query (the SIGINT drain path).
    obs::Registry reg;
    CollectingSink sink;
    std::atomic<bool> cancel{false};
    std::atomic<bool> watcherStop{false};
    std::thread watcher([&] {
        while (!watcherStop.load()) {
            if (reg.snapshot().counterOr("campaign.sched.completed") >=
                1) {
                cancel.store(true);
                return;
            }
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
    });

    CampaignConfig cfg = baseConfig(&reg, &sink);
    cfg.jobs = GetParam();
    cfg.queueCap = 1; // admit slowly so the latch can beat submission
    cfg.cancel = &cancel;
    CampaignResult res = runCampaign(
        instrumentedModule(kTelemetryProgram), telemetryWorld(), cfg);
    watcherStop.store(true);
    watcher.join();

    checkInvariants(res, sink, reg);
    obs::MetricsSnapshot snap = reg.snapshot();
    // Disposition split is timing-dependent; the partition is not.
    EXPECT_EQ(snap.counterOr("campaign.queries.completed") +
                  snap.counterOr("campaign.queries.cancelled") +
                  snap.counterOr("campaign.queries.timed_out"),
              res.queries.size());
    EXPECT_EQ(snap.counterOr("campaign.queries.cancelled"),
              res.cancelledQueries);
}

INSTANTIATE_TEST_SUITE_P(Jobs, TelemetryJobs, ::testing::Values(1, 8),
                         [](const auto &info) {
                             return "jobs" +
                                    std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
// Telemetry must not perturb the deterministic graph
// ---------------------------------------------------------------------

TEST(TelemetryDeterminism, GraphIsByteIdenticalWithTelemetryOn)
{
    CampaignConfig plain;
    CampaignResult a = runCampaign(
        instrumentedModule(kTelemetryProgram), telemetryWorld(), plain);

    obs::Registry reg;
    CollectingSink sink;
    CampaignConfig cfg = baseConfig(&reg, &sink);
    cfg.jobs = 8;
    CampaignResult b = runCampaign(
        instrumentedModule(kTelemetryProgram), telemetryWorld(), cfg);

    EXPECT_EQ(a.graph.toJson(), b.graph.toJson());
    EXPECT_EQ(a.graph.toDot(), b.graph.toDot());
}

// ---------------------------------------------------------------------
// Scheduler telemetry details
// ---------------------------------------------------------------------

TEST(SchedulerTelemetry, WorkerLanesAndQueueWait)
{
    obs::Registry reg;
    CollectingSink sink;
    CampaignConfig cfg = baseConfig(&reg, &sink);
    cfg.jobs = 2;
    CampaignResult res = runCampaign(
        instrumentedModule(kTelemetryProgram), telemetryWorld(), cfg);

    for (const obs::TraceRecord &rec : sink.records()) {
        if (rec.name == "query.exec" || rec.name == "query.queue-wait") {
            EXPECT_GE(rec.lane, obs::kWorkerLaneBase);
            EXPECT_LT(rec.lane, obs::kWorkerLaneBase + cfg.jobs);
        } else if (rec.name == "query.probe") {
            EXPECT_EQ(rec.lane, obs::kPipelineLane);
        }
    }
    // Every executed outcome has a worker, a start stamp, and a
    // non-negative queue wait.
    for (const query::RunOutcome &o : res.outcomes) {
        ASSERT_EQ(o.status, query::RunStatus::Done);
        EXPECT_GE(o.worker, 0);
        EXPECT_GT(o.startUs, 0);
        EXPECT_GE(o.queueWaitSeconds, 0.0);
    }

    obs::MetricsSnapshot snap = reg.snapshot();
    bool saw_wait = false;
    for (const obs::HistogramSnapshot &h : snap.histograms)
        if (h.name == "campaign.queue_wait_seconds") {
            saw_wait = true;
            EXPECT_EQ(h.count, res.queries.size());
        }
    EXPECT_TRUE(saw_wait);
    EXPECT_EQ(snap.gaugeOr("campaign.sched.active_workers", -1.0), 0.0);
    double util = snap.gaugeOr("campaign.sched.utilization", -1.0);
    EXPECT_GE(util, 0.0);
    EXPECT_LE(util, 1.0);
    EXPECT_GE(snap.gaugeOr("campaign.sched.worker.0.busy_seconds", -1.0),
              0.0);
    EXPECT_GE(snap.gaugeOr("campaign.sched.worker.1.busy_seconds", -1.0),
              0.0);
}

// ---------------------------------------------------------------------
// Profiler report
// ---------------------------------------------------------------------

TEST(ProfileReport, SchemaAndCounts)
{
    obs::Registry reg;
    CampaignConfig cfg = baseConfig(&reg, nullptr);
    cfg.jobs = 2;
    CampaignResult res = runCampaign(
        instrumentedModule(kTelemetryProgram), telemetryWorld(), cfg);

    query::ProfileOptions popt;
    popt.topN = 3;
    std::string json = profileJson(res, reg.snapshot(), popt);

    EXPECT_NE(json.find("\"schema\":\"ldx-campaign-profile-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"total\":6"), std::string::npos);
    EXPECT_NE(json.find("\"completed\":6"), std::string::npos);
    EXPECT_NE(json.find("\"latency_seconds\""), std::string::npos);
    EXPECT_NE(json.find("\"queue_wait_seconds\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
    EXPECT_NE(json.find("\"jobs\":2"), std::string::npos);
    EXPECT_NE(json.find("\"phases\""), std::string::npos);
    EXPECT_NE(json.find("campaign.execute"), std::string::npos);

    // Top-N is honoured: ranks 1..3 present, rank 4 absent.
    EXPECT_NE(json.find("\"rank\":3"), std::string::npos);
    EXPECT_EQ(json.find("\"rank\":4"), std::string::npos);
    // Slowest entries carry the per-phase breakdown.
    EXPECT_NE(json.find("\"queue_wait_seconds\":"), std::string::npos);
    EXPECT_NE(json.find("\"worker\":"), std::string::npos);
    EXPECT_NE(json.find("\"policy\":"), std::string::npos);
}

TEST(ProfileReport, EmptyCampaignIsWellFormed)
{
    CampaignResult res;
    obs::Registry reg;
    std::string json = profileJson(res, reg.snapshot());
    EXPECT_NE(json.find("\"schema\":\"ldx-campaign-profile-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"total\":0"), std::string::npos);
    // Zero-sample stats pin to 0, not NaN/garbage.
    EXPECT_NE(json.find("\"p99\":0"), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
    EXPECT_NE(json.find("\"slowest\":[]"), std::string::npos);
}

// ---------------------------------------------------------------------
// Exporter + progress against a live campaign
// ---------------------------------------------------------------------

TEST(CampaignExporter, CapturesFinalCampaignState)
{
    std::string dir = std::filesystem::temp_directory_path() /
                      "ldx_telem_exporter";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    std::string jsonl = dir + "/metrics.jsonl";
    std::string prom = dir + "/metrics.prom";

    obs::Registry reg;
    obs::ExporterConfig ecfg;
    ecfg.jsonlPath = jsonl;
    ecfg.promPath = prom;
    ecfg.intervalMs = 5;
    obs::Exporter exporter(reg, ecfg);
    ASSERT_TRUE(exporter.start());

    CampaignConfig cfg = baseConfig(&reg, nullptr);
    cfg.jobs = 2;
    CampaignResult res = runCampaign(
        instrumentedModule(kTelemetryProgram), telemetryWorld(), cfg);
    exporter.stop();

    EXPECT_GE(exporter.samples(), 1u);
    // The final JSONL sample reflects the post-drain registry.
    std::ifstream in(jsonl);
    std::string line, last;
    std::uint64_t lines = 0;
    while (std::getline(in, line))
        if (!line.empty()) {
            last = line;
            ++lines;
        }
    EXPECT_EQ(lines, exporter.samples());
    EXPECT_NE(last.find("\"campaign.queries.completed\":6"),
              std::string::npos);
    EXPECT_NE(last.find("\"ts_us\":"), std::string::npos);

    // The exposition file is complete and carries the same state.
    std::ifstream pin(prom);
    std::stringstream pss;
    pss << pin.rdbuf();
    EXPECT_NE(pss.str().find("ldx_campaign_queries_completed 6"),
              std::string::npos);
    EXPECT_NE(pss.str().find(
                  "# TYPE ldx_campaign_query_seconds histogram"),
              std::string::npos);
    std::filesystem::remove_all(dir);
    (void)res;
}

TEST(CampaignProgress, RenderLineTracksRegistry)
{
    obs::Registry reg;
    std::ostringstream out;
    obs::ProgressMeter meter(reg, out);
    // No campaign yet: renders zeros, no division blowups.
    EXPECT_NE(meter.renderLine().find("0/0 queries"),
              std::string::npos);

    reg.gauge("campaign.queries.planned").set(6);
    reg.counter("campaign.sched.completed").inc(3);
    reg.counter("campaign.cache.hits").inc(1);
    reg.counter("campaign.cache.misses").inc(5);
    reg.gauge("campaign.sched.active_workers").set(2);
    std::string line = meter.renderLine();
    EXPECT_NE(line.find("4/6 queries"), std::string::npos);
    EXPECT_NE(line.find("2 workers"), std::string::npos);

    // start/stop is clean and leaves a newline-terminated final line.
    meter.start();
    meter.stop();
    std::string rendered = out.str();
    ASSERT_FALSE(rendered.empty());
    EXPECT_EQ(rendered.back(), '\n');
    EXPECT_NE(rendered.find("4/6 queries"), std::string::npos);
}

// ---------------------------------------------------------------------
// Concurrency stress: snapshots vs. live writers
// ---------------------------------------------------------------------

// Snapshotting a histogram while writer threads observe into it must
// always yield an internally consistent copy: right bucket shape,
// monotonically growing totals, and finite percentiles — never a
// torn vector or NaN. (The count header may lag the bucket total on
// a torn read; percentile() ranks against the buckets for exactly
// that reason.)
TEST(RegistryStress, HistogramSnapshotsUnderConcurrentWriters)
{
    constexpr int kWriters = 4;
    constexpr int kObservationsPerWriter = 50'000;

    obs::Registry reg;
    obs::Histogram &hist =
        reg.histogram("stress.hist", {1.0, 10.0, 100.0});

    std::atomic<bool> go{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < kObservationsPerWriter; ++i)
                hist.observe(static_cast<double>((w + i) % 4) * 50.0);
        });
    }
    go.store(true, std::memory_order_release);

    std::uint64_t last_total = 0;
    for (int round = 0; round < 200; ++round) {
        obs::MetricsSnapshot snap = reg.snapshot();
        ASSERT_EQ(snap.histograms.size(), 1u);
        const obs::HistogramSnapshot &h = snap.histograms[0];
        ASSERT_EQ(h.bounds.size(), 3u);
        ASSERT_EQ(h.counts.size(), 4u);
        std::uint64_t total = 0;
        for (std::uint64_t c : h.counts)
            total += c;
        // Buckets only grow, and each is read atomically, so the
        // bucket total is non-decreasing across snapshots.
        EXPECT_GE(total, last_total);
        last_total = total;
        EXPECT_LE(total, std::uint64_t(kWriters) *
                             kObservationsPerWriter);
        double p99 = h.percentile(99.0);
        EXPECT_TRUE(p99 == p99); // not NaN
        EXPECT_GE(p99, 0.0);
        EXPECT_LE(p99, 100.0); // last finite bound
    }
    for (std::thread &t : writers)
        t.join();

    // Quiescent final snapshot: exact totals.
    obs::MetricsSnapshot snap = reg.snapshot();
    const obs::HistogramSnapshot &h = snap.histograms[0];
    std::uint64_t total = 0;
    for (std::uint64_t c : h.counts)
        total += c;
    EXPECT_EQ(total, std::uint64_t(kWriters) * kObservationsPerWriter);
    EXPECT_EQ(h.count, total);
}

// A scraper reading the Prometheus file while the exporter rewrites
// it every tick must always see a complete document: the write-to-
// temp + rename protocol never exposes a torn file.
TEST(ExporterStress, PrometheusRewriteIsAtomicUnderReader)
{
    std::string dir = std::filesystem::temp_directory_path() /
                      "ldx_telem_atomic";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    std::string prom = dir + "/metrics.prom";

    obs::Registry reg;
    obs::Counter &head = reg.counter("aaa_first");
    // Sorted last in the exposition: its presence proves the read
    // caught a complete document, not a prefix.
    obs::Counter &sentinel = reg.counter("zzz_sentinel");
    head.inc();
    sentinel.inc();

    obs::ExporterConfig ecfg;
    ecfg.promPath = prom;
    ecfg.intervalMs = 1;
    ecfg.build.version = "test";
    ecfg.build.dispatch = "fused";
    obs::Exporter exporter(reg, ecfg);
    ASSERT_TRUE(exporter.start());

    // Writers keep the document churning while the reader scrapes.
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        while (!stop.load(std::memory_order_acquire)) {
            head.inc();
            sentinel.inc();
        }
    });

    // Wait out the first tick so every reader round has a document.
    while (exporter.samples() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    int reads = 0;
    for (int round = 0; round < 400; ++round) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        std::ifstream in(prom, std::ios::binary);
        if (!in)
            continue; // rename may be mid-flight on this very round
        std::stringstream ss;
        ss << in.rdbuf();
        std::string doc = ss.str();
        if (doc.empty())
            continue;
        ++reads;
        // Complete head-to-tail: build info first, sentinel last.
        EXPECT_EQ(doc.rfind("# TYPE ldx_build_info gauge\n", 0), 0u);
        EXPECT_NE(doc.find("ldx_build_info{version=\"test\","
                           "dispatch=\"fused\","),
                  std::string::npos);
        EXPECT_NE(doc.find("\nldx_zzz_sentinel "), std::string::npos);
        EXPECT_EQ(doc.back(), '\n');
    }
    stop.store(true, std::memory_order_release);
    writer.join();
    exporter.stop();
    EXPECT_GT(reads, 0);

    // The final document also reads complete, and no temp file leaks.
    std::ifstream in(prom, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_NE(ss.str().find("\nldx_zzz_sentinel "), std::string::npos);
    EXPECT_FALSE(std::filesystem::exists(prom + ".tmp"));
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// SIGINT-drain teardown: the sinks still produce valid artifacts
// ---------------------------------------------------------------------

// A campaign drained by the SIGINT latch must still leave a valid
// Chrome trace (closed JSON array) and a final exporter sample — the
// CLI keeps its handler installed through this whole teardown.
TEST(CampaignDrain, ChromeTraceAndExporterCompleteOnCancel)
{
    std::string dir = std::filesystem::temp_directory_path() /
                      "ldx_telem_drain";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    std::string trace = dir + "/trace.json";
    std::string prom = dir + "/metrics.prom";

    obs::Registry reg;
    obs::ExporterConfig ecfg;
    ecfg.promPath = prom;
    ecfg.intervalMs = 1000; // only the final stop() sample lands
    obs::Exporter exporter(reg, ecfg);
    ASSERT_TRUE(exporter.start());

    std::atomic<bool> cancel{true}; // pre-canceled: drain immediately
    {
        std::ofstream out(trace, std::ios::binary);
        auto sink = obs::makeTraceSink("chrome", out);
        ASSERT_NE(sink, nullptr);
        CampaignConfig cfg = baseConfig(&reg, sink.get());
        cfg.cancel = &cancel;
        CampaignResult res = runCampaign(
            instrumentedModule(kTelemetryProgram), telemetryWorld(),
            cfg);
        EXPECT_GT(res.cancelledQueries, 0u);
        exporter.stop();
        sink->flush();
    }

    // The Chrome document parses head-to-tail: array closed.
    std::ifstream tin(trace, std::ios::binary);
    std::stringstream tss;
    tss << tin.rdbuf();
    std::string doc = tss.str();
    ASSERT_FALSE(doc.empty());
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\n]}\n"), std::string::npos);

    // The final Prometheus sample carries the drained state.
    std::ifstream pin(prom, std::ios::binary);
    std::stringstream pss;
    pss << pin.rdbuf();
    EXPECT_NE(pss.str().find("ldx_campaign_queries_cancelled"),
              std::string::npos);
    EXPECT_GE(exporter.samples(), 1u);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace ldx
