/**
 * @file
 * The snapshot/fork byte-equality wall.
 *
 * The non-snapshot path is the oracle: for every workload, source,
 * and mutation policy, a forked suffix run (shared prefix executed
 * once by the group carrier, state captured at the mutated source's
 * first touch, remaining policies resumed from the snapshot) must be
 * indistinguishable from a full run — identical verdicts, identical
 * campaign graphs, identical recorder event order. These tests hold
 * that wall; src/ldx/snapshot.h documents the policy-independence
 * argument they check.
 *
 * Scoping (mirrors the fuzz oracle's fingerprint contract): under
 * the threaded driver with a multi-threaded guest, lock-order
 * sharing is best effort (§7), so alignment counts are dropped from
 * the comparison — verdict, findings, exits, and edges must still
 * match. Recorder event order is compared under the lockstep driver,
 * where per-side slow-path event streams are deterministic.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "ldx/engine.h"
#include "ldx/snapshot.h"
#include "query/campaign.h"
#include "query/verdict.h"
#include "workloads/workloads.h"

namespace ldx {
namespace {

using workloads::Workload;

const std::vector<core::MutationStrategy> kPolicies = {
    core::MutationStrategy::OffByOne,
    core::MutationStrategy::Zero,
    core::MutationStrategy::BitFlip,
};

core::EngineConfig
baseConfig(const Workload &w, const core::SourceSpec &src,
           bool threaded)
{
    core::EngineConfig cfg;
    cfg.sinks = w.sinks;
    cfg.sources = {src};
    cfg.threaded = threaded;
    cfg.wallClockCap = 30.0;
    return cfg;
}

/**
 * Per-side recorder event streams, scoped to the semantic events:
 * syscall execute/copy/decouple, sink comparisons, counter
 * push/pop, lock-order events, mutations, outputs, thread
 * lifecycle, and traps. Rendezvous-scheduling diagnostics
 * (block/unblock, watchdog expiry, barrier pair/skip) record *when*
 * the peer advanced relative to a wait — the trigger pause holds
 * one side while the other catches up, so that phase alignment
 * legitimately shifts between a carrier/fork and a full run, while
 * each side's semantic stream must stay byte-identical in order and
 * payload. Wall-clock timestamps and ring sequence numbers are
 * likewise dropped (order is the line order).
 */
std::string
recorderTrace(const core::DualResult &res)
{
    if (!res.divergence.present)
        return "";
    std::ostringstream out;
    for (int side = 0; side < 2; ++side)
        for (const obs::RecEvent &e : res.divergence.events[side]) {
            switch (e.kind) {
            case obs::RecKind::Block:
            case obs::RecKind::Unblock:
            case obs::RecKind::WatchdogExpire:
            case obs::RecKind::BarrierPair:
            case obs::RecKind::BarrierSkip:
                continue;
            default:
                break;
            }
            out << side << ':' << obs::recKindName(e.kind) << ':'
                << int(e.side) << ':' << e.tid << ':' << e.site
                << ':' << e.cnt << ':' << e.sysNo << ':' << e.arg
                << '\n';
        }
    return out.str();
}

/** Zero the scheduling-sensitive tallies (threaded × threaded-guest
 *  comparisons keep everything else). */
query::QueryVerdict
withoutAlignment(query::QueryVerdict v)
{
    v.alignedSyscalls = 0;
    v.syscallDiffs = 0;
    return v;
}

struct RunPair
{
    query::QueryVerdict verdict;
    std::string recorder;
};

std::vector<RunPair>
fullRuns(const ir::Module &module, const os::WorldSpec &world,
         const core::EngineConfig &base)
{
    std::vector<RunPair> out;
    for (auto policy : kPolicies) {
        core::EngineConfig cfg = base;
        cfg.strategy = policy;
        core::DualEngine eng(module, world, cfg);
        core::DualResult res = eng.run();
        out.push_back({query::verdictFromResult(res),
                       recorderTrace(res)});
    }
    return out;
}

struct GroupOutcome
{
    std::vector<RunPair> runs;
    core::SnapshotGroupStats stats;
};

GroupOutcome
snapshotGroup(const ir::Module &module, const os::WorldSpec &world,
              const core::EngineConfig &base)
{
    GroupOutcome out;
    auto results =
        core::runSnapshotGroup(module, world, base, kPolicies,
                               out.stats);
    for (const auto &res : results)
        out.runs.push_back({query::verdictFromResult(res),
                            recorderTrace(res)});
    return out;
}

// ---------------------------------------------------------------
// The wall: every workload x {lockstep, threaded driver}. Forked
// verdicts (and, under lockstep, recorder event order) must equal
// the full-run oracle's for every policy of every source.
// ---------------------------------------------------------------

class SnapshotWall
    : public ::testing::TestWithParam<std::tuple<const char *, bool>>
{};

TEST_P(SnapshotWall, ForksMatchFullRuns)
{
    const auto &[name, threaded] = GetParam();
    const Workload *w = workloads::findWorkload(name);
    ASSERT_NE(w, nullptr);
    const ir::Module &module = workloads::workloadModule(*w, true);
    os::WorldSpec world = w->world(w->defaultScale);
    const bool threaded_guest =
        w->source.find("spawn(") != std::string::npos;
    const bool weak = threaded && threaded_guest;

    for (const auto &src : w->sources) {
        SCOPED_TRACE("source " + src.resourceKey());
        core::EngineConfig base = baseConfig(*w, src, threaded);
        auto oracle = fullRuns(module, world, base);
        auto group = snapshotGroup(module, world, base);
        ASSERT_EQ(group.runs.size(), oracle.size());
        for (std::size_t i = 0; i < oracle.size(); ++i) {
            SCOPED_TRACE("policy " + std::to_string(i));
            if (weak) {
                EXPECT_EQ(withoutAlignment(group.runs[i].verdict),
                          withoutAlignment(oracle[i].verdict));
            } else {
                EXPECT_EQ(group.runs[i].verdict, oracle[i].verdict);
            }
            if (!threaded && !threaded_guest)
                EXPECT_EQ(group.runs[i].recorder, oracle[i].recorder)
                    << "recorder event order diverged";
        }
        if (group.stats.engaged) {
            EXPECT_EQ(group.stats.prefixRuns, 1u);
            EXPECT_EQ(group.stats.forks, kPolicies.size() - 1);
            EXPECT_EQ(group.stats.instrsSaved,
                      group.stats.prefixInstrs *
                          (kPolicies.size() - 1));
        }
    }
}

std::vector<std::tuple<const char *, bool>>
wallParams()
{
    std::vector<std::tuple<const char *, bool>> params;
    for (const Workload &w : workloads::allWorkloads()) {
        params.emplace_back(w.name.c_str(), false);
        params.emplace_back(w.name.c_str(), true);
    }
    return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SnapshotWall, ::testing::ValuesIn(wallParams()),
    [](const auto &info) {
        std::string n = std::get<0>(info.param);
        for (auto &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n + (std::get<1>(info.param) ? "_threaded"
                                            : "_lockstep");
    });

// ---------------------------------------------------------------
// Vulnerable workloads: the trigger must engage (their sources are
// always touched), and snapshotting must hold at every mutation
// offset — each offset is a different fork point payload, but the
// trigger site and the equality contract are offset-independent.
// ---------------------------------------------------------------

class SnapshotOffsets : public ::testing::TestWithParam<const char *>
{};

TEST_P(SnapshotOffsets, EveryOffsetForksEqualAndDeterministic)
{
    const Workload *w = workloads::findWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    const ir::Module &module = workloads::workloadModule(*w, true);
    os::WorldSpec world = w->world(w->defaultScale);

    for (std::size_t off = 0; off < 6; ++off) {
        SCOPED_TRACE("offset " + std::to_string(off));
        core::SourceSpec src = w->sources.front();
        src.offset = off;
        core::EngineConfig base = baseConfig(*w, src, false);
        auto oracle = fullRuns(module, world, base);
        auto a = snapshotGroup(module, world, base);
        auto b = snapshotGroup(module, world, base);
        EXPECT_TRUE(a.stats.engaged);
        ASSERT_EQ(a.runs.size(), oracle.size());
        ASSERT_EQ(b.runs.size(), oracle.size());
        for (std::size_t i = 0; i < oracle.size(); ++i) {
            SCOPED_TRACE("policy " + std::to_string(i));
            EXPECT_EQ(a.runs[i].verdict, oracle[i].verdict);
            // Determinism: re-running the group reproduces the
            // verdict and the recorder stream byte-for-byte.
            EXPECT_EQ(a.runs[i].verdict, b.runs[i].verdict);
            EXPECT_EQ(a.runs[i].recorder, b.runs[i].recorder);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Vulnerable, SnapshotOffsets,
                         ::testing::Values("gif2png", "mp3info",
                                           "prozilla", "yopsweb",
                                           "ngircd", "gzip-alloc"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n)
                                 if (!isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             return n;
                         });

// ---------------------------------------------------------------
// Dispatch modes: the snapshot contract is dispatch-independent
// (all modes retire the identical instruction stream).
// ---------------------------------------------------------------

TEST(SnapshotDispatch, ForksMatchAcrossDispatchModes)
{
    const Workload *w = workloads::findWorkload("mp3info");
    ASSERT_NE(w, nullptr);
    const ir::Module &module = workloads::workloadModule(*w, true);
    os::WorldSpec world = w->world(w->defaultScale);

    std::vector<vm::DispatchMode> modes = {vm::DispatchMode::Fused,
                                           vm::DispatchMode::Switch};
    if (vm::hasThreadedDispatch())
        modes.push_back(vm::DispatchMode::Threaded);
    for (vm::DispatchMode mode : modes) {
        SCOPED_TRACE(vm::dispatchModeName(mode));
        core::EngineConfig base =
            baseConfig(*w, w->sources.front(), false);
        base.vmConfig.dispatch = mode;
        auto oracle = fullRuns(module, world, base);
        auto group = snapshotGroup(module, world, base);
        EXPECT_TRUE(group.stats.engaged);
        for (std::size_t i = 0; i < oracle.size(); ++i) {
            EXPECT_EQ(group.runs[i].verdict, oracle[i].verdict);
            EXPECT_EQ(group.runs[i].recorder, oracle[i].recorder);
        }
    }
}

// ---------------------------------------------------------------
// Campaign-level wall: graph JSON and DOT are byte-identical
// between snapshot on and off, and (snapshot on) across worker
// counts; the snapshot metrics meet the S-prefix-runs contract.
// ---------------------------------------------------------------

query::CampaignResult
runCampaign(const Workload &w, bool snapshot, int jobs)
{
    query::CampaignConfig cfg;
    cfg.sinks = w.sinks;
    cfg.snapshot = snapshot;
    cfg.jobs = jobs;
    return query::runCampaign(workloads::workloadModule(w, true),
                              w.world(w.defaultScale), cfg);
}

class SnapshotCampaign : public ::testing::TestWithParam<const char *>
{};

TEST_P(SnapshotCampaign, GraphsByteIdenticalOnVsOff)
{
    const Workload *w = workloads::findWorkload(GetParam());
    ASSERT_NE(w, nullptr);

    query::CampaignResult off = runCampaign(*w, false, 1);
    query::CampaignResult on1 = runCampaign(*w, true, 1);
    query::CampaignResult on8 = runCampaign(*w, true, 8);

    EXPECT_EQ(off.graph.toJson(), on1.graph.toJson());
    EXPECT_EQ(off.graph.toDot(), on1.graph.toDot());
    EXPECT_EQ(on1.graph.toJson(), on8.graph.toJson());
    EXPECT_EQ(on1.graph.toDot(), on8.graph.toDot());

    // One prefix run per queryable source; every remaining policy is
    // a fork; the executed dual-prefix instruction count drops by at
    // least 2x against the full-run path (here exactly P x).
    std::size_t sources = off.baseline.queryableSources().size();
    EXPECT_EQ(on1.snapshotPrefixRuns, sources);
    EXPECT_EQ(on8.snapshotPrefixRuns, sources);
    EXPECT_EQ(on1.snapshotForks,
              sources * (query::CampaignConfig{}.policies.size() - 1));
    EXPECT_GT(off.prefixInstrs, 0u);
    EXPECT_GE(off.prefixInstrs, 2 * on1.prefixInstrs);
}

INSTANTIATE_TEST_SUITE_P(Workloads, SnapshotCampaign,
                         ::testing::Values("gif2png", "mp3info",
                                           "ngircd", "tnftp"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n)
                                 if (!isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             return n;
                         });

// ---------------------------------------------------------------
// Virtual-time regression: the kernels' nondeterminism cursors
// (virtual clock queries, RDTSC/random PRNG positions, sys-latency
// instruction ticks) are part of the snapshot. A fork that reset
// them would hand the suffix different clock/rdtsc values than a
// full run's and diverge at the console sink.
// ---------------------------------------------------------------

TEST(SnapshotVirtualTime, CursorsSurviveFork)
{
    // The kernel's virtual time is clockBase + clockQueries * step +
    // instrTicks / 10000, and rdtsc is instrTicks * 3 + a PRNG draw
    // (os::Kernel::now); virtualSyscallCost itself is a pure function
    // of (sysNo, outcome), so the mutable state a fork must carry is
    // exactly the instruction ticks, the clock-query count, and the
    // PRNG cursors. The prefix burns instructions in a loop and
    // advances every cursor; the suffix (after the env-var source's
    // first touch) reads them all again and prints the raw values.
    // A fork that reset any cursor prints different numbers than the
    // full run and diverges at the console sink.
    const char *source = R"(
int acc;
char scratch[32];

int main() {
    int i = 0;
    while (i < 20000) { acc = acc + i; i = i + 1; }
    int a = time();
    int b = rdtsc();
    acc = acc + (random() & 127);
    char ev[16];
    getenv("MODE", ev, 15);
    int c = time();
    int d = rdtsc();
    int e = random() & 127;
    itoa(a, scratch); print(scratch, strlen(scratch));
    itoa(b, scratch); print(scratch, strlen(scratch));
    itoa(c, scratch); print(scratch, strlen(scratch));
    itoa(d, scratch); print(scratch, strlen(scratch));
    itoa(e + acc + ev[0], scratch); print(scratch, strlen(scratch));
    return 0;
}
)";
    auto module = lang::compileSource(source);
    instrument::CounterInstrumenter pass(*module);
    pass.run();
    os::WorldSpec world;
    world.env["MODE"] = "fast";

    core::EngineConfig base;
    base.sources = {core::SourceSpec::env("MODE")};
    base.wallClockCap = 30.0;

    auto oracle = fullRuns(*module, world, base);
    auto group = snapshotGroup(*module, world, base);
    EXPECT_TRUE(group.stats.engaged);
    EXPECT_GT(group.stats.prefixInstrs, 0u);
    ASSERT_EQ(group.runs.size(), oracle.size());
    for (std::size_t i = 0; i < oracle.size(); ++i) {
        SCOPED_TRACE("policy " + std::to_string(i));
        EXPECT_EQ(group.runs[i].verdict, oracle[i].verdict);
        EXPECT_EQ(group.runs[i].recorder, oracle[i].recorder);
    }
}

} // namespace
} // namespace ldx
