/**
 * @file
 * Corpus validation: every workload compiles, verifies, instruments,
 * runs natively, dual-executes cleanly with no mutation (no false
 * positives), and produces the expected verdict for each declared
 * mutation case (Table 2 ground truth).
 */
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "fuzz/generator.h"
#include "instrument/instrument.h"
#include "ir/verifier.h"
#include "lang/compiler.h"
#include "ldx/engine.h"
#include "os/kernel.h"
#include "query/campaign.h"
#include "vm/machine.h"
#include "workloads/corpus/corpus.h"
#include "workloads/workloads.h"

namespace ldx {
namespace {

using workloads::Category;
using workloads::Workload;

std::vector<std::string>
allNames()
{
    std::vector<std::string> names;
    for (const Workload &w : workloads::allWorkloads())
        names.push_back(w.name);
    return names;
}

class WorkloadSuite : public ::testing::TestWithParam<std::string>
{
  protected:
    const Workload &
    workload() const
    {
        const Workload *w = workloads::findWorkload(GetParam());
        EXPECT_NE(w, nullptr);
        return *w;
    }
};

TEST_P(WorkloadSuite, CompilesAndVerifies)
{
    const Workload &w = workload();
    const ir::Module &module = workloads::workloadModule(w, false);
    EXPECT_TRUE(ir::verifyModule(module).empty());
    const ir::Module &inst = workloads::workloadModule(w, true);
    EXPECT_TRUE(ir::verifyModule(inst).empty());
    EXPECT_TRUE(instrument::isInstrumented(inst));
}

TEST_P(WorkloadSuite, RunsNatively)
{
    const Workload &w = workload();
    os::Kernel kernel(w.world(w.defaultScale));
    vm::Machine machine(workloads::workloadModule(w, false), kernel, {});
    vm::StepStatus st = machine.run();
    if (w.category == Category::Vulnerable) {
        // The exploit input may crash the victim; both outcomes are
        // legitimate, but the program must terminate.
        EXPECT_TRUE(st == vm::StepStatus::Finished ||
                    st == vm::StepStatus::Trapped);
    } else {
        EXPECT_EQ(st, vm::StepStatus::Finished)
            << (machine.trap() ? machine.trap()->message : "");
    }
}

TEST_P(WorkloadSuite, DualExecutionWithoutMutationIsClean)
{
    const Workload &w = workload();
    core::EngineConfig cfg;
    cfg.sinks = w.sinks;
    cfg.wallClockCap = 30.0;
    core::DualEngine engine(workloads::workloadModule(w, true),
                            w.world(w.defaultScale), cfg);
    auto res = engine.run();
    EXPECT_FALSE(res.deadlocked);
    if (w.name == "x264") {
        // x264 emits a statistic from an unprotected racy counter;
        // the slave's coupling waits perturb its interleaving, so the
        // value can differ even without mutation. This is exactly the
        // false-positive class the paper's Limitations section and
        // Table 4 describe ("low level data races ... may induce
        // non-deterministic state differences"). Only that one sink
        // may fire.
        for (const core::Finding &f : res.findings) {
            EXPECT_TRUE(f.masterValue.find("x264.stats") !=
                        std::string::npos)
                << f.describe();
        }
        return;
    }
    EXPECT_FALSE(res.causality())
        << "false positive: " << res.findings[0].describe();
}

TEST_P(WorkloadSuite, MutationCasesMatchGroundTruth)
{
    const Workload &w = workload();
    for (const workloads::MutationCase &mc : w.mutationCases) {
        core::EngineConfig cfg;
        cfg.sinks = w.sinks;
        cfg.sources = mc.sources;
        cfg.wallClockCap = 30.0;
        core::DualEngine engine(workloads::workloadModule(w, true),
                                w.world(w.defaultScale), cfg);
        auto res = engine.run();
        EXPECT_FALSE(res.deadlocked) << w.name << "/" << mc.label;
        EXPECT_EQ(res.causality(), mc.expectLeak)
            << w.name << "/" << mc.label
            << (res.causality() ? " first: " + res.findings[0].describe()
                                : "");
    }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, WorkloadSuite, ::testing::ValuesIn(allNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(WorkloadRegistry, HasTwentyEightPrograms)
{
    EXPECT_EQ(workloads::allWorkloads().size(), 28u);
    EXPECT_EQ(workloads::workloadsIn(Category::Spec).size(), 12u);
    EXPECT_EQ(workloads::workloadsIn(Category::NetSys).size(), 5u);
    EXPECT_EQ(workloads::workloadsIn(Category::Vulnerable).size(), 6u);
    EXPECT_EQ(workloads::workloadsIn(Category::Concurrent).size(), 5u);
}

TEST(WorkloadRegistry, NamesAreUnique)
{
    std::set<std::string> names;
    for (const Workload &w : workloads::allWorkloads())
        EXPECT_TRUE(names.insert(w.name).second) << w.name;
}

// ---------------------------------------------------------------
// Promoted golden corpus (src/workloads/corpus/): each checked-in
// fuzzer program's campaign graph must match its golden byte for
// byte — with the snapshot/fork path off AND on. A diff means some
// stage of the pipeline (front end, instrumentation, enumeration,
// dual execution, aggregation, snapshot resume) changed observable
// behaviour; regenerate the goldens only for intentional changes.
// ---------------------------------------------------------------

std::string
readGolden(const std::string &name)
{
    std::ifstream in(std::string(LDX_CORPUS_DIR) + "/" + name +
                     ".golden.json");
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

class GoldenCorpus : public ::testing::TestWithParam<std::string>
{};

TEST_P(GoldenCorpus, CampaignGraphMatchesGoldenBothModes)
{
    const workloads::CorpusEntry *entry = nullptr;
    for (const workloads::CorpusEntry &e : workloads::corpusEntries())
        if (e.name == GetParam())
            entry = &e;
    ASSERT_NE(entry, nullptr);

    std::string golden = readGolden(entry->name);
    ASSERT_FALSE(golden.empty())
        << "missing golden " << entry->name << ".golden.json";

    auto module = lang::compileSource(entry->source);
    instrument::CounterInstrumenter pass(*module);
    pass.run();
    os::WorldSpec world =
        fuzz::ProgramGenerator::worldFor(entry->seed);

    query::CampaignConfig cfg;
    query::CampaignResult off =
        query::runCampaign(*module, world, cfg);
    EXPECT_EQ(off.graph.toJson(), golden);

    cfg.snapshot = true;
    query::CampaignResult on = query::runCampaign(*module, world, cfg);
    EXPECT_EQ(on.graph.toJson(), golden);
}

std::vector<std::string>
corpusNames()
{
    std::vector<std::string> names;
    for (const workloads::CorpusEntry &e : workloads::corpusEntries())
        names.push_back(e.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(
    Promoted, GoldenCorpus, ::testing::ValuesIn(corpusNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(GoldenCorpus, HasTwelveDiverseEntries)
{
    const auto &entries = workloads::corpusEntries();
    EXPECT_EQ(entries.size(), 12u);
    std::set<std::string> names;
    bool any_threaded = false, any_single = false;
    for (const workloads::CorpusEntry &e : entries) {
        EXPECT_TRUE(names.insert(e.name).second) << e.name;
        (e.source.find("spawn(") != std::string::npos ? any_threaded
                                                      : any_single) =
            true;
    }
    EXPECT_TRUE(any_threaded);
    EXPECT_TRUE(any_single);
}

// The second corpus generation (s061..s183) was promoted for call
// depth and concurrency: every entry spawns at least two guest
// threads on top of a >=6-function call graph.
TEST(GoldenCorpus, SecondGenerationIsDeepAndThreaded)
{
    std::set<std::string> second = {"s061", "s092", "s134", "s183"};
    std::size_t seen = 0;
    for (const workloads::CorpusEntry &e : workloads::corpusEntries()) {
        if (!second.count(e.name))
            continue;
        ++seen;
        std::size_t spawns = 0;
        for (std::size_t at = e.source.find("spawn(");
             at != std::string::npos;
             at = e.source.find("spawn(", at + 1))
            ++spawns;
        EXPECT_GE(spawns, 2u) << e.name;
        std::size_t fns = 0;
        for (std::size_t at = e.source.find("\nint ");
             at != std::string::npos;
             at = e.source.find("\nint ", at + 1))
            if (e.source.find('(', at) <
                e.source.find('\n', at + 1))
                ++fns;
        EXPECT_GE(fns, 5u) << e.name << " call graph too shallow";
    }
    EXPECT_EQ(seen, second.size());
}

} // namespace
} // namespace ldx
