/**
 * @file
 * Corpus validation: every workload compiles, verifies, instruments,
 * runs natively, dual-executes cleanly with no mutation (no false
 * positives), and produces the expected verdict for each declared
 * mutation case (Table 2 ground truth).
 */
#include <gtest/gtest.h>

#include "instrument/instrument.h"
#include "ir/verifier.h"
#include "ldx/engine.h"
#include "os/kernel.h"
#include "vm/machine.h"
#include "workloads/workloads.h"

namespace ldx {
namespace {

using workloads::Category;
using workloads::Workload;

std::vector<std::string>
allNames()
{
    std::vector<std::string> names;
    for (const Workload &w : workloads::allWorkloads())
        names.push_back(w.name);
    return names;
}

class WorkloadSuite : public ::testing::TestWithParam<std::string>
{
  protected:
    const Workload &
    workload() const
    {
        const Workload *w = workloads::findWorkload(GetParam());
        EXPECT_NE(w, nullptr);
        return *w;
    }
};

TEST_P(WorkloadSuite, CompilesAndVerifies)
{
    const Workload &w = workload();
    const ir::Module &module = workloads::workloadModule(w, false);
    EXPECT_TRUE(ir::verifyModule(module).empty());
    const ir::Module &inst = workloads::workloadModule(w, true);
    EXPECT_TRUE(ir::verifyModule(inst).empty());
    EXPECT_TRUE(instrument::isInstrumented(inst));
}

TEST_P(WorkloadSuite, RunsNatively)
{
    const Workload &w = workload();
    os::Kernel kernel(w.world(w.defaultScale));
    vm::Machine machine(workloads::workloadModule(w, false), kernel, {});
    vm::StepStatus st = machine.run();
    if (w.category == Category::Vulnerable) {
        // The exploit input may crash the victim; both outcomes are
        // legitimate, but the program must terminate.
        EXPECT_TRUE(st == vm::StepStatus::Finished ||
                    st == vm::StepStatus::Trapped);
    } else {
        EXPECT_EQ(st, vm::StepStatus::Finished)
            << (machine.trap() ? machine.trap()->message : "");
    }
}

TEST_P(WorkloadSuite, DualExecutionWithoutMutationIsClean)
{
    const Workload &w = workload();
    core::EngineConfig cfg;
    cfg.sinks = w.sinks;
    cfg.wallClockCap = 30.0;
    core::DualEngine engine(workloads::workloadModule(w, true),
                            w.world(w.defaultScale), cfg);
    auto res = engine.run();
    EXPECT_FALSE(res.deadlocked);
    if (w.name == "x264") {
        // x264 emits a statistic from an unprotected racy counter;
        // the slave's coupling waits perturb its interleaving, so the
        // value can differ even without mutation. This is exactly the
        // false-positive class the paper's Limitations section and
        // Table 4 describe ("low level data races ... may induce
        // non-deterministic state differences"). Only that one sink
        // may fire.
        for (const core::Finding &f : res.findings) {
            EXPECT_TRUE(f.masterValue.find("x264.stats") !=
                        std::string::npos)
                << f.describe();
        }
        return;
    }
    EXPECT_FALSE(res.causality())
        << "false positive: " << res.findings[0].describe();
}

TEST_P(WorkloadSuite, MutationCasesMatchGroundTruth)
{
    const Workload &w = workload();
    for (const workloads::MutationCase &mc : w.mutationCases) {
        core::EngineConfig cfg;
        cfg.sinks = w.sinks;
        cfg.sources = mc.sources;
        cfg.wallClockCap = 30.0;
        core::DualEngine engine(workloads::workloadModule(w, true),
                                w.world(w.defaultScale), cfg);
        auto res = engine.run();
        EXPECT_FALSE(res.deadlocked) << w.name << "/" << mc.label;
        EXPECT_EQ(res.causality(), mc.expectLeak)
            << w.name << "/" << mc.label
            << (res.causality() ? " first: " + res.findings[0].describe()
                                : "");
    }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, WorkloadSuite, ::testing::ValuesIn(allNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(WorkloadRegistry, HasTwentyEightPrograms)
{
    EXPECT_EQ(workloads::allWorkloads().size(), 28u);
    EXPECT_EQ(workloads::workloadsIn(Category::Spec).size(), 12u);
    EXPECT_EQ(workloads::workloadsIn(Category::NetSys).size(), 5u);
    EXPECT_EQ(workloads::workloadsIn(Category::Vulnerable).size(), 6u);
    EXPECT_EQ(workloads::workloadsIn(Category::Concurrent).size(), 5u);
}

TEST(WorkloadRegistry, NamesAreUnique)
{
    std::set<std::string> names;
    for (const Workload &w : workloads::allWorkloads())
        EXPECT_TRUE(names.insert(w.name).second) << w.name;
}

} // namespace
} // namespace ldx
