/**
 * @file
 * Guest-level profiler tests: the determinism contract (profile JSON,
 * flamegraph stacks, and annotated listings are byte-identical across
 * drivers, dispatch modes, and — for the campaign heat map — worker
 * counts and cache states), the master-vs-slave diff attribution on
 * the vulnerable workloads, the SiteCounters container semantics, and
 * the report formats themselves.
 */
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "ldx/engine.h"
#include "obs/profiler.h"
#include "query/campaign.h"
#include "query/profile.h"
#include "support/diag.h"
#include "vm/predecode.h"
#include "workloads/workloads.h"

namespace ldx {
namespace {

using workloads::Workload;

/** All three deterministic profiler artifacts of one dual run. */
struct Artifacts
{
    std::string report;
    std::string flame;
    std::string annotate;
    std::uint64_t masterRetired = 0;
    std::uint64_t slaveRetired = 0;
};

/**
 * Dual-execute @p w with site profiling under the given driver and
 * dispatch mode and render the deterministic artifacts. When
 * @p wholeValue, every byte of each source is perturbed (the
 * campaign default) instead of the workload's single exploit byte.
 */
Artifacts
profileWorkload(const Workload &w, bool threaded,
                vm::DispatchMode mode, bool wholeValue = false)
{
    const ir::Module &module = workloads::workloadModule(w, true);
    auto decoded = std::make_shared<vm::PredecodedModule>(module);
    decoded->decodeAll();

    core::EngineConfig cfg;
    cfg.sinks = w.sinks;
    cfg.sources = w.sources;
    if (wholeValue)
        for (core::SourceSpec &src : cfg.sources)
            src.offset = core::SourceSpec::kWholeValue;
    cfg.threaded = threaded;
    cfg.vmConfig.dispatch = mode;
    cfg.vmConfig.predecoded = decoded;
    cfg.flightRecorder = false;

    obs::SiteCounters master, slave;
    cfg.masterSites = &master;
    cfg.slaveSites = &slave;

    core::DualEngine engine(module, w.world(w.defaultScale), cfg);
    engine.run();

    obs::ProfileMeta meta =
        vm::buildProfileMeta(*decoded, w.name, w.source);
    Artifacts a;
    a.report = obs::profileReportJson(meta, master, &slave, {});
    a.flame = obs::collapsedStacks(meta, master);
    a.annotate = obs::annotateSource(meta, master, &slave);
    a.masterRetired = master.totalRetired();
    a.slaveRetired = slave.totalRetired();
    return a;
}

// ---------------------------------------------------------------------
// SiteCounters container semantics
// ---------------------------------------------------------------------

TEST(SiteCounters, ShapeMergeAndTotals)
{
    obs::SiteCounters a;
    EXPECT_FALSE(a.shaped());
    a.shape({3, 2});
    EXPECT_TRUE(a.shaped());
    ASSERT_EQ(a.retired.size(), 2u);
    EXPECT_EQ(a.retired[0].size(), 3u);
    EXPECT_EQ(a.retired[1].size(), 2u);
    EXPECT_EQ(a.callEdges.size(), 4u);
    EXPECT_EQ(a.rootCalls.size(), 2u);

    // Idempotent for the same program shape.
    a.shape({3, 2});

    a.retired[0][1] = 5;
    a.syscalls[1][0] = 2;
    a.callEdges[1] = 7;
    a.gateStalls[3].episodes = 1;

    obs::SiteCounters b;
    b.shape({3, 2});
    b.retired[0][1] = 10;
    b.gateStalls[3].polls = 4;
    b.merge(a);
    EXPECT_EQ(b.retired[0][1], 15u);
    EXPECT_EQ(b.syscalls[1][0], 2u);
    EXPECT_EQ(b.callEdges[1], 7u);
    EXPECT_EQ(b.gateStalls[3].episodes, 1u);
    EXPECT_EQ(b.gateStalls[3].polls, 4u);
    EXPECT_EQ(b.totalRetired(), 15u);

    // One instance belongs to one program: reshaping is a bug.
    EXPECT_THROW(a.shape({4, 2}), PanicError);
}

// ---------------------------------------------------------------------
// Determinism: drivers and dispatch modes, whole corpus
// ---------------------------------------------------------------------

class ProfilerDeterminism
    : public ::testing::TestWithParam<std::string>
{
  protected:
    const Workload &
    workload() const
    {
        const Workload *w = workloads::findWorkload(GetParam());
        EXPECT_NE(w, nullptr);
        return *w;
    }
};

/**
 * The deterministic artifacts are byte-identical across the lockstep
 * and threaded drivers and across dispatch modes — per-site retired
 * counts are protocol state, like the verdict itself.
 */
TEST_P(ProfilerDeterminism, ArtifactsByteIdenticalAcrossConfigs)
{
    const Workload &w = workload();
    Artifacts ref =
        profileWorkload(w, false, vm::DispatchMode::Fused);
    EXPECT_GT(ref.masterRetired, 0u);

    Artifacts sw = profileWorkload(w, false, vm::DispatchMode::Switch);
    EXPECT_EQ(ref.report, sw.report);
    EXPECT_EQ(ref.flame, sw.flame);
    EXPECT_EQ(ref.annotate, sw.annotate);

    Artifacts thr_mode =
        profileWorkload(w, false, vm::DispatchMode::Threaded);
    EXPECT_EQ(ref.report, thr_mode.report);
    EXPECT_EQ(ref.flame, thr_mode.flame);

    Artifacts thr_driver =
        profileWorkload(w, true, vm::DispatchMode::Fused);
    EXPECT_EQ(ref.report, thr_driver.report);
    EXPECT_EQ(ref.flame, thr_driver.flame);
    EXPECT_EQ(ref.annotate, thr_driver.annotate);
}

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names;
    for (const Workload &w : workloads::allWorkloads())
        names.push_back(w.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ProfilerDeterminism,
    ::testing::ValuesIn(allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

// ---------------------------------------------------------------------
// Master-vs-slave diff attribution on the vulnerable workloads
// ---------------------------------------------------------------------

class ProfilerDiff : public ::testing::TestWithParam<std::string>
{};

/**
 * A whole-value mutation of each vulnerable workload's exploit input
 * changes what the slave does; the report's diff section must
 * localize that causal footprint. The six workloads fall into three
 * genuinely different divergence classes, asserted per workload:
 *
 *  - syscall-level (prozilla, ngircd, gzip-alloc): the mutation
 *    gates I/O, so a diffed site is a syscall instruction;
 *  - parser-level (gif2png, mp3info): the broken header check makes
 *    the slave skip the vulnerable parser entirely, but the
 *    workload's syscalls all precede the check — the diff localizes
 *    to the parser's body instead;
 *  - value-only (yopsweb): the guest path is identical on both
 *    sides and only the overflowed ret-token bytes differ, so the
 *    site diff is empty (the attack is still caught, at the sink).
 */
TEST_P(ProfilerDiff, AttackLocalizesToDiffSites)
{
    const Workload *w = workloads::findWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    Artifacts a = profileWorkload(*w, false, vm::DispatchMode::Fused,
                                  /*wholeValue=*/true);

    std::size_t diff = a.report.find("\"diff\":[");
    ASSERT_NE(diff, std::string::npos);

    if (GetParam() == "yopsweb") {
        EXPECT_EQ(a.masterRetired, a.slaveRetired);
        EXPECT_NE(a.report.find("\"diff\":[]", diff),
                  std::string::npos);
        return;
    }

    // The sides executed different site multisets, and the diff
    // pinpoints where.
    EXPECT_NE(a.masterRetired, a.slaveRetired);
    EXPECT_NE(a.report.find("\"master_retired\":", diff),
              std::string::npos);

    if (GetParam() == "gif2png" || GetParam() == "mp3info") {
        const char *fn = GetParam() == "gif2png"
                             ? "\"fn\":\"parseComment\""
                             : "\"fn\":\"readTitle\"";
        EXPECT_NE(a.report.find(fn, diff), std::string::npos);
    } else {
        EXPECT_NE(a.report.find("\"op\":\"syscall\"", diff),
                  std::string::npos);
    }
}

std::vector<std::string>
vulnerableNames()
{
    std::vector<std::string> names;
    for (const Workload *w :
         workloads::workloadsIn(workloads::Category::Vulnerable))
        names.push_back(w->name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(
    Vulnerable, ProfilerDiff, ::testing::ValuesIn(vulnerableNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

// ---------------------------------------------------------------------
// Report formats
// ---------------------------------------------------------------------

const char *kProfProgram = R"(
int leaky(int x) {
    if (x > 48) { print("hi", 2); }
    return x + 1;
}

int main() {
    char secret[8];
    getenv("SECRET", secret, 8);
    int acc = 0;
    int i = 0;
    while (i < 10) {
        acc = acc + leaky(secret[0]);
        i = i + 1;
    }
    char out[8];
    itoa(acc, out);
    print(out, strlen(out));
    return 0;
}
)";

/** Compile + instrument + profile the inline test program. */
struct InlineRun
{
    std::unique_ptr<ir::Module> module;
    std::shared_ptr<vm::PredecodedModule> decoded;
    obs::SiteCounters master, slave;
    obs::ProfileMeta meta;
};

std::unique_ptr<InlineRun>
runInline(const char *source)
{
    auto run = std::make_unique<InlineRun>();
    run->module = lang::compileSource(source);
    instrument::CounterInstrumenter pass(*run->module);
    pass.run();
    run->decoded =
        std::make_shared<vm::PredecodedModule>(*run->module);
    run->decoded->decodeAll();

    core::EngineConfig cfg;
    cfg.sources = {core::SourceSpec::env("SECRET")};
    cfg.vmConfig.predecoded = run->decoded;
    cfg.flightRecorder = false;
    cfg.masterSites = &run->master;
    cfg.slaveSites = &run->slave;
    os::WorldSpec world;
    world.env["SECRET"] = "abc";
    core::DualEngine engine(*run->module, world, cfg);
    engine.run();
    run->meta =
        vm::buildProfileMeta(*run->decoded, "inline.mc", source);
    return run;
}

TEST(ProfileReport, SchemaTotalsAndTopSites)
{
    auto run = runInline(kProfProgram);
    obs::ProfileReportOptions opt;
    opt.topSites = 3;
    std::string json = obs::profileReportJson(run->meta, run->master,
                                              &run->slave, opt);
    EXPECT_NE(json.find("\"schema\":\"ldx-profile-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"program\":\"inline.mc\""),
              std::string::npos);
    EXPECT_NE(json.find("\"totals\":{\"retired\":"),
              std::string::npos);
    EXPECT_NE(json.find("\"slave_totals\":"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"leaky\""), std::string::npos);
    EXPECT_NE(json.find("\"call_edges\":["), std::string::npos);
    // Stalls are driver-dependent and excluded by default.
    EXPECT_EQ(json.find("\"stalls\""), std::string::npos);
    std::string with_stalls = obs::profileReportJson(
        run->meta, run->master, &run->slave,
        {.topSites = 3, .includeStalls = true});
    EXPECT_NE(with_stalls.find("\"stalls\""), std::string::npos);
}

TEST(ProfileReport, FlamegraphStacksRootedAndCounted)
{
    auto run = runInline(kProfProgram);
    std::string flame =
        obs::collapsedStacks(run->meta, run->master);
    ASSERT_FALSE(flame.empty());
    // leaky's dominant caller chain is main -> leaky.
    EXPECT_NE(flame.find("main;leaky;"), std::string::npos);
    // Every line is `stack count\n` with a positive count. Sites
    // with a source location carry the op@line:col label;
    // instrumentation ops (cnt.*) legitimately have none.
    std::size_t pos = 0;
    int located = 0;
    while (pos < flame.size()) {
        std::size_t nl = flame.find('\n', pos);
        ASSERT_NE(nl, std::string::npos);
        std::string line = flame.substr(pos, nl - pos);
        std::size_t sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        EXPECT_GT(std::stoull(line.substr(sp + 1)), 0u) << line;
        if (line.find('@') != std::string::npos)
            ++located;
        pos = nl + 1;
    }
    EXPECT_GT(located, 0);
}

TEST(ProfileReport, AnnotatedListingCarriesSourceAndDeltas)
{
    auto run = runInline(kProfProgram);
    std::string ann =
        obs::annotateSource(run->meta, run->master, &run->slave);
    EXPECT_NE(ann.find("# ldx profile: inline.mc"),
              std::string::npos);
    // Source text survives verbatim; hot lines carry counts.
    EXPECT_NE(ann.find("while (i < 10)"), std::string::npos);
    EXPECT_NE(ann.find("acc = acc + leaky(secret[0]);"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Campaign heat map
// ---------------------------------------------------------------------

const ir::Module &
heatModule()
{
    static std::unique_ptr<ir::Module> module = [] {
        auto m = lang::compileSource(kProfProgram);
        instrument::CounterInstrumenter pass(*m);
        pass.run();
        return m;
    }();
    return *module;
}

std::string
heatMap(int jobs, bool threaded, const std::string &cacheDir)
{
    query::CampaignConfig cfg;
    cfg.jobs = jobs;
    cfg.threaded = threaded;
    cfg.siteProfile = true;
    cfg.cacheDir = cacheDir;
    auto decoded =
        std::make_shared<vm::PredecodedModule>(heatModule());
    decoded->decodeAll();
    cfg.vmConfig.predecoded = decoded;
    os::WorldSpec world;
    world.env["SECRET"] = "abc";
    query::CampaignResult res =
        query::runCampaign(heatModule(), world, cfg);
    obs::ProfileMeta meta =
        vm::buildProfileMeta(*decoded, "inline.mc", kProfProgram);
    return query::siteHeatJson(res, meta);
}

TEST(SiteHeat, ByteIdenticalAcrossJobsDriversAndCacheState)
{
    std::string dir = std::filesystem::temp_directory_path() /
                      "ldx_heat_cache";
    std::filesystem::remove_all(dir);

    std::string ref = heatMap(1, false, "");
    EXPECT_NE(ref.find("\"schema\":\"ldx-site-heat-v1\""),
              std::string::npos);
    EXPECT_NE(ref.find("\"sources\":["), std::string::npos);

    EXPECT_EQ(ref, heatMap(4, false, ""));
    EXPECT_EQ(ref, heatMap(2, true, ""));

    // Site profiling bypasses the cache, so a cold and a warm
    // persistent cache produce the same artifact.
    EXPECT_EQ(ref, heatMap(1, false, dir));
    EXPECT_EQ(ref, heatMap(1, false, dir));
    std::filesystem::remove_all(dir);
}

TEST(SiteHeat, QueryProfilesCompactAndOrdered)
{
    query::CampaignConfig cfg;
    cfg.siteProfile = true;
    auto decoded =
        std::make_shared<vm::PredecodedModule>(heatModule());
    decoded->decodeAll();
    cfg.vmConfig.predecoded = decoded;
    os::WorldSpec world;
    world.env["SECRET"] = "abc";
    query::CampaignResult res =
        query::runCampaign(heatModule(), world, cfg);

    ASSERT_EQ(res.queryProfiles.size(), res.queries.size());
    EXPECT_EQ(res.cacheHits, 0u); // cache bypassed
    for (std::size_t i = 0; i < res.queries.size(); ++i) {
        if (res.outcomes[i].status != query::RunStatus::Done)
            continue;
        const auto &prof = res.queryProfiles[i];
        ASSERT_FALSE(prof.empty());
        for (std::size_t k = 1; k < prof.size(); ++k) {
            bool ordered =
                prof[k - 1].fn < prof[k].fn ||
                (prof[k - 1].fn == prof[k].fn &&
                 prof[k - 1].idx < prof[k].idx);
            EXPECT_TRUE(ordered) << "entry " << k;
        }
        std::uint64_t total = 0;
        for (const query::SiteHeatEntry &e : prof)
            total += e.retired;
        EXPECT_GT(total, 0u);
    }
}

} // namespace
} // namespace ldx
