/**
 * @file
 * End-to-end tests of the MiniC frontend: compile and execute small
 * programs natively, asserting on exit codes and console output.
 */
#include <gtest/gtest.h>

#include "support/diag.h"
#include "testutil.h"

namespace ldx {
namespace {

using test::runProgram;

TEST(LangTest, ReturnsConstant)
{
    auto r = runProgram("int main() { return 42; }");
    EXPECT_EQ(r.status, vm::StepStatus::Finished);
    EXPECT_EQ(r.exitCode, 42);
}

TEST(LangTest, Arithmetic)
{
    auto r = runProgram(
        "int main() { int x = 6; int y = 7; return x * y - 2; }");
    EXPECT_EQ(r.exitCode, 40);
}

TEST(LangTest, OperatorPrecedence)
{
    auto r = runProgram("int main() { return 2 + 3 * 4 - 10 / 5; }");
    EXPECT_EQ(r.exitCode, 12);
}

TEST(LangTest, HexAndBitOps)
{
    auto r = runProgram(
        "int main() { return (0xff & 0x0f) | (1 << 4); }");
    EXPECT_EQ(r.exitCode, 0x1f);
}

TEST(LangTest, IfElse)
{
    auto r = runProgram(
        "int main() { int x = 5;"
        "  if (x > 3) { return 1; } else { return 2; } }");
    EXPECT_EQ(r.exitCode, 1);
}

TEST(LangTest, WhileLoopSum)
{
    auto r = runProgram(
        "int main() { int i = 0; int s = 0;"
        "  while (i < 10) { s = s + i; i = i + 1; } return s; }");
    EXPECT_EQ(r.exitCode, 45);
}

TEST(LangTest, ForLoopWithBreakContinue)
{
    auto r = runProgram(
        "int main() { int s = 0;"
        "  for (int i = 0; i < 100; i = i + 1) {"
        "    if (i % 2 == 0) { continue; }"
        "    if (i > 9) { break; }"
        "    s = s + i;"
        "  } return s; }"); // 1+3+5+7+9
    EXPECT_EQ(r.exitCode, 25);
}

TEST(LangTest, DoWhile)
{
    auto r = runProgram(
        "int main() { int i = 0; int n = 0;"
        "  do { n = n + 1; i = i + 1; } while (i < 3);"
        "  return n; }");
    EXPECT_EQ(r.exitCode, 3);
}

TEST(LangTest, NestedLoops)
{
    auto r = runProgram(
        "int main() { int s = 0;"
        "  for (int i = 0; i < 4; i = i + 1) {"
        "    for (int j = 0; j < 3; j = j + 1) { s = s + 1; } }"
        "  return s; }");
    EXPECT_EQ(r.exitCode, 12);
}

TEST(LangTest, FunctionsAndRecursion)
{
    auto r = runProgram(
        "int fib(int n) { if (n < 2) { return n; }"
        "  return fib(n - 1) + fib(n - 2); }"
        "int main() { return fib(10); }");
    EXPECT_EQ(r.exitCode, 55);
}

TEST(LangTest, MutualRecursion)
{
    // Calls are resolved after all functions are declared, so mutual
    // recursion needs no forward declarations.
    auto r = runProgram(
        "int isEven(int n) { if (n == 0) { return 1; }"
        "  return isOdd(n - 1); }"
        "int isOdd(int n) { if (n == 0) { return 0; }"
        "  return isEven(n - 1); }"
        "int main() { return isEven(10) + isOdd(7) * 2; }");
    EXPECT_EQ(r.exitCode, 3);
}

TEST(LangTest, GlobalVariables)
{
    auto r = runProgram(
        "int counter = 5;"
        "int bump() { counter = counter + 1; return counter; }"
        "int main() { bump(); bump(); return counter; }");
    EXPECT_EQ(r.exitCode, 7);
}

TEST(LangTest, GlobalArray)
{
    auto r = runProgram(
        "int table[8];"
        "int main() {"
        "  for (int i = 0; i < 8; i = i + 1) { table[i] = i * i; }"
        "  return table[5]; }");
    EXPECT_EQ(r.exitCode, 25);
}

TEST(LangTest, LocalArrayAndChars)
{
    auto r = runProgram(
        "int main() { char buf[16];"
        "  buf[0] = 'h'; buf[1] = 'i'; buf[2] = 0;"
        "  return strlen(buf); }");
    EXPECT_EQ(r.exitCode, 2);
}

TEST(LangTest, StringInitAndLibcalls)
{
    auto r = runProgram(
        "int main() { char name[32] = \"ldx\";"
        "  char copy[32];"
        "  strcpy(copy, name);"
        "  strcat(copy, \"-vm\");"
        "  if (strcmp(copy, \"ldx-vm\") == 0) { return strlen(copy); }"
        "  return 0; }");
    EXPECT_EQ(r.exitCode, 6);
}

TEST(LangTest, PointersAndAddressOf)
{
    auto r = runProgram(
        "int main() { int x = 3; int *p = &x;"
        "  *p = 11; return x; }");
    EXPECT_EQ(r.exitCode, 11);
}

TEST(LangTest, PointerArithmeticOnIntPtr)
{
    auto r = runProgram(
        "int main() { int a[4]; int *p = &a[0];"
        "  a[0] = 10; a[1] = 20; a[2] = 30;"
        "  p = p + 2; return *p; }");
    EXPECT_EQ(r.exitCode, 30);
}

TEST(LangTest, AtoiItoa)
{
    auto r = runProgram(
        "int main() { char buf[24];"
        "  itoa(4321, buf);"
        "  return atoi(buf) - 4000; }");
    EXPECT_EQ(r.exitCode, 321);
}

TEST(LangTest, MallocAndHeap)
{
    auto r = runProgram(
        "int main() { int *p = imalloc(4);"
        "  p[0] = 7; p[3] = 9;"
        "  return p[0] + p[3]; }");
    EXPECT_EQ(r.exitCode, 16);
}

TEST(LangTest, FunctionPointers)
{
    auto r = runProgram(
        "int twice(int x) { return 2 * x; }"
        "int thrice(int x) { return 3 * x; }"
        "int main() { fn f = &twice;"
        "  int a = f(10);"
        "  f = &thrice;"
        "  return a + f(10); }");
    EXPECT_EQ(r.exitCode, 50);
}

TEST(LangTest, ShortCircuitEvaluation)
{
    auto r = runProgram(
        "int g = 0;"
        "int bump() { g = g + 1; return 1; }"
        "int main() {"
        "  int a = 0 && bump();"  // bump not called
        "  int b = 1 || bump();"  // bump not called
        "  int c = 1 && bump();"  // called once
        "  return g * 100 + a * 10 + b + c; }");
    EXPECT_EQ(r.exitCode, 102);
}

TEST(LangTest, ConsoleOutput)
{
    auto r = runProgram(
        "int main() { puts(\"hello\"); printi(42); return 0; }");
    EXPECT_EQ(r.console(), "hello42");
}

TEST(LangTest, CommentsAreIgnored)
{
    auto r = runProgram(
        "// line comment\n"
        "/* block\n comment */\n"
        "int main() { return 9; /* tail */ }");
    EXPECT_EQ(r.exitCode, 9);
}

TEST(LangTest, ScopingAndShadowing)
{
    auto r = runProgram(
        "int main() { int x = 1;"
        "  { int x = 2; { int x = 3; } }"
        "  return x; }");
    EXPECT_EQ(r.exitCode, 1);
}

TEST(LangTest, DivisionByZeroTraps)
{
    auto r = runProgram("int main() { int z = 0; return 5 / z; }");
    EXPECT_EQ(r.status, vm::StepStatus::Trapped);
}

TEST(LangTest, OutOfBoundsHeapAccessTraps)
{
    auto r = runProgram(
        "int main() { char *p = malloc(8); p[100000] = 1; return 0; }");
    EXPECT_EQ(r.status, vm::StepStatus::Trapped);
}

TEST(LangTest, StackSmashTrapsOnReturn)
{
    auto r = runProgram(
        "int victim(int n) { char buf[8];"
        "  for (int i = 0; i < n; i = i + 1) { buf[i] = 65; }"
        "  return 0; }"
        "int main() { victim(64); return 0; }");
    EXPECT_EQ(r.status, vm::StepStatus::Trapped);
    EXPECT_NE(r.trapMessage.find("return token"), std::string::npos);
}

TEST(LangTest, ParseErrorIsFatal)
{
    EXPECT_THROW(runProgram("int main() { return ; ; }"),
                 FatalError);
}

TEST(LangTest, UnknownIdentifierIsFatal)
{
    EXPECT_THROW(runProgram("int main() { return nope; }"), FatalError);
}

TEST(LangTest, ArityMismatchIsFatal)
{
    EXPECT_THROW(runProgram(
        "int f(int a) { return a; } int main() { return f(1, 2); }"),
        FatalError);
}

TEST(LangTest, ExitBuiltinStopsProgram)
{
    auto r = runProgram(
        "int main() { exit(33); return 1; }");
    EXPECT_EQ(r.exitCode, 33);
}

} // namespace
} // namespace ldx
