/**
 * @file
 * Engine edge cases and component tests: mutation strategies, resource
 * keys and tainting, early-termination and thread-asymmetry
 * divergences (no deadlocks), decoupled-world consistency, and finding
 * formatting.
 */
#include <gtest/gtest.h>

#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "ldx/engine.h"
#include "os/taintmap.h"

namespace ldx {
namespace {

using core::CauseKind;
using core::DualEngine;
using core::EngineConfig;
using core::MutationStrategy;
using core::SourceSpec;

core::DualResult
dualRun(const std::string &source, const os::WorldSpec &world,
        EngineConfig cfg = {})
{
    auto module = lang::compileSource(source);
    instrument::CounterInstrumenter pass(*module);
    pass.run();
    cfg.wallClockCap = 20.0;
    DualEngine engine(*module, world, cfg);
    auto res = engine.run();
    EXPECT_FALSE(res.deadlocked);
    return res;
}

// ----------------------------------------------------------- mutation

TEST(MutationTest, OffByOneChangesExactlyOneByte)
{
    std::string v = "hello";
    Prng prng(1);
    EXPECT_TRUE(core::mutateByteAt(v, 1, MutationStrategy::OffByOne,
                                   prng));
    EXPECT_EQ(v, "hfllo");
}

TEST(MutationTest, OffsetClampsToLastByte)
{
    std::string v = "ab";
    Prng prng(1);
    core::mutateByteAt(v, 99, MutationStrategy::OffByOne, prng);
    EXPECT_EQ(v, "ac");
}

TEST(MutationTest, WholeValueMutatesEveryByte)
{
    std::string v = "abc";
    Prng prng(1);
    core::mutateByteAt(v, SourceSpec::kWholeValue,
                       MutationStrategy::OffByOne, prng);
    EXPECT_EQ(v, "bcd");
}

TEST(MutationTest, StrategiesAlwaysChangeSomething)
{
    for (auto strategy :
         {MutationStrategy::OffByOne, MutationStrategy::Zero,
          MutationStrategy::BitFlip, MutationStrategy::Random}) {
        std::string v = "q";
        Prng prng(5);
        bool changed =
            core::mutateByteAt(v, 0, strategy, prng);
        // Zero can be a no-op only if the byte already was zero.
        EXPECT_TRUE(changed) << core::mutationStrategyName(strategy);
        EXPECT_NE(v, "q");
    }
}

TEST(MutationTest, EmptyValueUntouched)
{
    std::string v;
    Prng prng(1);
    EXPECT_FALSE(core::mutateByteAt(v, 0, MutationStrategy::OffByOne,
                                    prng));
}

TEST(MutationTest, WorldMutationTargetsRightPieces)
{
    os::WorldSpec base;
    base.env["A"] = "x";
    base.files["/f"] = "data";
    base.peers["h"].responses = {"r1", "r2"};
    base.incoming.push_back({"req"});

    Prng prng(3);
    auto mutated = core::mutateWorld(
        base,
        {SourceSpec::env("A"), SourceSpec::file("/f"),
         SourceSpec::peer("h"), SourceSpec::incoming()},
        MutationStrategy::OffByOne, prng);
    EXPECT_TRUE(mutated.anyChange);
    EXPECT_EQ(mutated.world.env["A"], "y");
    EXPECT_EQ(mutated.world.files["/f"], "eata");
    EXPECT_EQ(mutated.world.peers["h"].responses[0], "s1");
    EXPECT_EQ(mutated.world.peers["h"].responses[1], "s2");
    EXPECT_EQ(mutated.world.incoming[0].request, "seq");
    ASSERT_EQ(mutated.taintKeys.size(), 4u);
    EXPECT_EQ(mutated.taintKeys[0], "env:A");
    EXPECT_EQ(mutated.taintKeys[1], "path:/f");
    EXPECT_EQ(mutated.taintKeys[2], "net:h");
    EXPECT_EQ(mutated.taintKeys[3], "net:client");
}

TEST(MutationTest, MissingSourceIsNoChange)
{
    os::WorldSpec base;
    Prng prng(3);
    auto mutated = core::mutateWorld(base, {SourceSpec::env("NOPE")},
                                     MutationStrategy::OffByOne, prng);
    EXPECT_FALSE(mutated.anyChange);
}

// ------------------------------------------------------------- taints

TEST(TaintMapTest, BasicOps)
{
    os::ResourceTaintMap taints;
    EXPECT_EQ(taints.size(), 0u);
    EXPECT_FALSE(taints.isTainted("path:/x"));
    taints.taint("path:/x");
    taints.taint("path:/x");
    EXPECT_TRUE(taints.isTainted("path:/x"));
    EXPECT_EQ(taints.size(), 1u);
    EXPECT_EQ(taints.snapshot().count("path:/x"), 1u);
}

// -------------------------------------------------- engine edge cases

TEST(EngineTest, SlaveEarlyExitReportsVanishedSink)
{
    // The mutated run exits before reaching the sink; the master's
    // sink has no counterpart (Algorithm 2 case 1).
    const char *src = R"(
int main() {
    char buf[8];
    getenv("GATE", buf, 8);
    if (buf[0] == 'y') { exit(3); }
    print("reached", 7);
    return 0;
}
)";
    os::WorldSpec w;
    w.env["GATE"] = "x"; // slave sees 'y' -> exits early
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("GATE")};
    auto res = dualRun(src, w, cfg);
    bool vanished = false;
    for (const auto &f : res.findings)
        vanished |= f.kind == CauseKind::SinkVanished;
    EXPECT_TRUE(vanished);
}

TEST(EngineTest, SlaveOnlyThreadDoesNotDeadlock)
{
    // The mutation makes the slave spawn an extra worker thread that
    // has no master counterpart; its syscalls run decoupled and the
    // run must terminate.
    const char *src = R"(
int worker(int x) {
    time();
    print("w", 1);
    return x;
}
int main() {
    char buf[8];
    getenv("PAR", buf, 8);
    int t = 0 - 1;
    if (buf[0] == 'y') { t = spawn(&worker, 1); }
    print("main", 4);
    if (t >= 0) { join(t); }
    return 0;
}
)";
    os::WorldSpec w;
    w.env["PAR"] = "x"; // slave sees 'y'
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("PAR")};
    cfg.stallTimeout = 20000; // keep the watchdog snappy in tests
    auto res = dualRun(src, w, cfg);
    EXPECT_TRUE(res.causality()); // the extra "w" print is an extra sink
}

TEST(EngineTest, DecoupledFileStateStaysConsistent)
{
    // After divergence taints a file, the slave operates on its own
    // clone: it must read back what *it* wrote, not master state.
    const char *src = R"(
int main() {
    char mode[8];
    getenv("MODE", mode, 8);
    int fd = open("/scratch", 1);
    if (mode[0] == 'a') {
        write(fd, "AAAA", 4);
    } else {
        write(fd, "BB", 2);
    }
    close(fd);
    char buf[8];
    int rd = open("/scratch", 0);
    int n = read(rd, buf, 8);
    close(rd);
    char out[4];
    itoa(n, out);
    print(out, strlen(out));
    return 0;
}
)";
    os::WorldSpec w;
    w.env["MODE"] = "a"; // slave sees 'b' -> writes 2 bytes
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("MODE")};
    cfg.sinks.file = false;
    auto res = dualRun(src, w, cfg);
    // Master printed "4", slave printed "2": the console sink differs,
    // which is only possible if each side read its own clone.
    ASSERT_TRUE(res.causality());
    bool saw = false;
    for (const auto &f : res.findings) {
        if (f.kind == CauseKind::SinkValueDiff) {
            EXPECT_NE(f.masterValue.find("4"), std::string::npos);
            EXPECT_NE(f.slaveValue.find("2"), std::string::npos);
            saw = true;
        }
    }
    EXPECT_TRUE(saw);
}

TEST(EngineTest, TaintedResourcesReported)
{
    const char *src = R"(
int main() {
    char secret[16];
    int fd = open("/secret", 0);
    read(fd, secret, 8);
    close(fd);
    print(secret, 4);
    return 0;
}
)";
    os::WorldSpec w;
    w.files["/secret"] = "abcdefgh";
    EngineConfig cfg;
    cfg.sources = {SourceSpec::file("/secret")};
    auto res = dualRun(src, w, cfg);
    EXPECT_TRUE(res.taintedResources.count("path:/secret"));
}

TEST(EngineTest, MultipleSourcesAtOnce)
{
    // §3: "It does not require running multiple times for individual
    // sources" — one dual execution with several sources mutated.
    const char *src = R"(
int main() {
    char a[8];
    char b[8];
    getenv("A", a, 8);
    getenv("B", b, 8);
    print(a, 1);
    print(b, 1);
    return 0;
}
)";
    os::WorldSpec w;
    w.env["A"] = "1";
    w.env["B"] = "2";
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("A"), SourceSpec::env("B")};
    auto res = dualRun(src, w, cfg);
    int value_diffs = 0;
    for (const auto &f : res.findings)
        value_diffs += f.kind == CauseKind::SinkValueDiff;
    EXPECT_EQ(value_diffs, 2);
}

TEST(EngineTest, TraceRecordsAlignmentActions)
{
    const char *src = R"(
int main() {
    char buf[8];
    getenv("X", buf, 8);
    print(buf, 1);
    return 0;
}
)";
    os::WorldSpec w;
    w.env["X"] = "q";
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("X")};
    cfg.recordTrace = true;
    auto res = dualRun(src, w, cfg);
    ASSERT_FALSE(res.trace.empty());
    bool saw_exec = false, saw_decouple = false, saw_sink = false;
    for (const core::TraceEvent &evt : res.trace) {
        saw_exec |= evt.kind == core::TraceEvent::Kind::Execute;
        saw_decouple |= evt.kind == core::TraceEvent::Kind::Decouple;
        saw_sink |= evt.kind == core::TraceEvent::Kind::SinkDiff;
        EXPECT_FALSE(evt.describe().empty());
    }
    EXPECT_TRUE(saw_exec);     // master executed the getenv
    EXPECT_TRUE(saw_decouple); // slave read its mutated copy
    EXPECT_TRUE(saw_sink);     // the print payload differed

    // Tracing off by default: no events collected.
    EngineConfig cfg2;
    cfg2.sources = {SourceSpec::env("X")};
    auto res2 = dualRun(src, w, cfg2);
    EXPECT_TRUE(res2.trace.empty());
}

TEST(EngineTest, FindingDescribeIsReadable)
{
    core::Finding f;
    f.kind = CauseKind::SinkValueDiff;
    f.sysNo = static_cast<std::int64_t>(os::Sys::Send);
    f.site = 9;
    f.cnt = 7;
    f.loc = {11, 0};
    f.masterValue = "alpha";
    f.slaveValue = "beta";
    std::string text = f.describe();
    EXPECT_NE(text.find("sink-value-diff"), std::string::npos);
    EXPECT_NE(text.find("send#9"), std::string::npos);
    EXPECT_NE(text.find("cnt=7"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("beta"), std::string::npos);
}

TEST(EngineTest, SinkConfigChannelMatching)
{
    core::SinkConfig s;
    s.net = true;
    s.file = false;
    s.console = true;
    EXPECT_TRUE(s.matchesChannel("net:host"));
    EXPECT_FALSE(s.matchesChannel("file:/x"));
    EXPECT_TRUE(s.matchesChannel("console"));
}

TEST(EngineTest, LockOrderSharingCanBeDisabled)
{
    const char *src = R"(
int total;
int work(int id) {
    for (int i = 0; i < 5; i = i + 1) {
        lock(1);
        total = total + id;
        unlock(1);
    }
    return 0;
}
int main() {
    int t = spawn(&work, 2);
    work(1);
    join(t);
    char out[8];
    itoa(total, out);
    print(out, strlen(out));
    return 0;
}
)";
    EngineConfig cfg;
    cfg.shareLockOrder = false;
    auto res = dualRun(src, {}, cfg);
    EXPECT_FALSE(res.causality());
}

} // namespace
} // namespace ldx
