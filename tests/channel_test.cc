/**
 * @file
 * Low-contention coupling channel tests: the PosCell seqlock, the
 * CountingMutex, and — the acceptance property of the poll fast path
 * — that a blocked waiter's re-polls are answered without acquiring
 * the channel mutex until something its decision depends on changes.
 */
#include <gtest/gtest.h>

#include "lang/compiler.h"
#include "ldx/controller.h"
#include "obs/registry.h"
#include "obs/scope.h"
#include "os/kernel.h"
#include "os/sysno.h"
#include "vm/machine.h"

namespace ldx {
namespace {

using core::ControllerOptions;
using core::Position;
using core::PosKind;
using core::Side;

TEST(PosCellTest, PublishReadRoundtrip)
{
    core::PosCell cell;
    std::vector<std::int64_t> stack = {11, 22, 33};
    cell.publish({PosKind::Barrier, 42, 7, 3}, stack);

    Position p;
    std::vector<std::int64_t> got;
    bool truncated = true;
    std::uint64_t seq = cell.read(p, got, truncated);
    EXPECT_FALSE(truncated);
    EXPECT_EQ(seq, cell.seq());
    EXPECT_EQ(p.kind, PosKind::Barrier);
    EXPECT_EQ(p.cnt, 42);
    EXPECT_EQ(p.site, 7);
    EXPECT_EQ(p.iter, 3);
    EXPECT_EQ(got, stack);

    // Every publish advances the sequence by a full writer cycle.
    cell.publish({PosKind::Running, 43, -1, 0}, stack);
    EXPECT_EQ(cell.seq(), seq + 2);
}

TEST(PosCellTest, DeepStacksAreFlaggedTruncated)
{
    core::PosCell cell;
    std::vector<std::int64_t> stack(core::PosCell::kMaxDepth + 5, 9);
    cell.publish({PosKind::Input, 1, 0, 0}, stack);

    Position p;
    std::vector<std::int64_t> got;
    bool truncated = false;
    cell.read(p, got, truncated);
    EXPECT_TRUE(truncated);
    EXPECT_EQ(got.size(), core::PosCell::kMaxDepth);
}

TEST(CountingMutexTest, CountsEveryAcquisition)
{
    core::CountingMutex mu;
    EXPECT_EQ(mu.acquisitions(), 0u);
    {
        std::lock_guard<core::CountingMutex> lock(mu);
    }
    EXPECT_TRUE(mu.try_lock());
    mu.unlock();
    EXPECT_EQ(mu.acquisitions(), 2u);
}

/**
 * Drives the two controllers by hand (no drivers, no scheduling): a
 * deterministic microscope on the poll protocol.
 */
class ChannelFixture : public ::testing::Test
{
  protected:
    ChannelFixture()
        : scope_(registry_, nullptr), chan_(scope_),
          module_(lang::compileSource("int main() { return 0; }")),
          masterKernel_({}), slaveKernel_({}),
          masterVm_(*module_, masterKernel_),
          slaveVm_(*module_, slaveKernel_)
    {
        ControllerOptions mo;
        mo.side = Side::Master;
        masterCtl_ = std::make_unique<core::Controller>(chan_, mo);
    }

    void
    makeSlave(std::uint64_t stall_timeout = 100'000)
    {
        ControllerOptions so;
        so.side = Side::Slave;
        so.stallTimeout = stall_timeout;
        slaveCtl_ = std::make_unique<core::Controller>(chan_, so);
    }

    vm::SyscallRequest
    request(std::int64_t sys_no, std::int64_t cnt, int site)
    {
        vm::SyscallRequest req;
        req.tid = 0;
        req.sysNo = sys_no;
        req.cnt = cnt;
        req.site = site;
        return req;
    }

    obs::Registry registry_;
    obs::Scope scope_;
    core::SyncChannel chan_;
    std::unique_ptr<ir::Module> module_;
    os::Kernel masterKernel_;
    os::Kernel slaveKernel_;
    vm::Machine masterVm_;
    vm::Machine slaveVm_;
    std::unique_ptr<core::Controller> masterCtl_;
    std::unique_ptr<core::Controller> slaveCtl_;
};

TEST_F(ChannelFixture, BlockedRepollsDoNotAcquireChannelMutex)
{
    makeSlave();
    auto input = request(static_cast<std::int64_t>(os::Sys::Random),
                         /*cnt=*/5, /*site=*/3);
    os::Outcome out;

    // First poll runs the locked evaluation and records the gate.
    ASSERT_EQ(slaveCtl_->onSyscall(input, slaveVm_, out),
              vm::PortReply::Blocked);
    core::ThreadChannel &ch = chan_.thread(0);
    std::uint64_t locked = ch.mutex.acquisitions();
    ASSERT_GT(locked, 0u);

    // Pure re-polls: nothing changed, so the mutex is never touched.
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(slaveCtl_->onSyscall(input, slaveVm_, out),
                  vm::PortReply::Blocked);
    EXPECT_EQ(ch.mutex.acquisitions(), locked);
    EXPECT_GE(chan_.blockedPolls->value(), 1001u);

    // The master publishing a *behind* position (a local syscall at a
    // lower counter) moves the seqlock; the waiter re-evaluates the
    // snapshot lock-free and keeps waiting off the mutex.
    auto behind = request(static_cast<std::int64_t>(os::Sys::Yield),
                          /*cnt=*/2, /*site=*/1);
    ASSERT_EQ(masterCtl_->onSyscall(behind, masterVm_, out),
              vm::PortReply::Done);
    locked = ch.mutex.acquisitions();
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(slaveCtl_->onSyscall(input, slaveVm_, out),
                  vm::PortReply::Blocked);
    EXPECT_EQ(ch.mutex.acquisitions(), locked);

    // The aligned outcome arriving bumps the structural version: the
    // next poll takes the locked path and copies the result.
    os::Outcome master_out;
    ASSERT_EQ(masterCtl_->onSyscall(input, masterVm_, master_out),
              vm::PortReply::Done);
    os::Outcome slave_out;
    ASSERT_EQ(slaveCtl_->onSyscall(input, slaveVm_, slave_out),
              vm::PortReply::Done);
    EXPECT_GT(ch.mutex.acquisitions(), locked);
    EXPECT_EQ(slave_out.ret, master_out.ret);
    EXPECT_EQ(slave_out.data, master_out.data);
    EXPECT_EQ(chan_.copies->value(), 1u);
    EXPECT_EQ(chan_.alignedSyscalls->value(), 1u);
    EXPECT_EQ(chan_.syscallDiffs->value(), 0u);
}

TEST_F(ChannelFixture, WatchdogExpiryDecouplesThroughFastPath)
{
    // A small stall budget: the fast path must still honour the
    // watchdog and hand the expiry to the locked path exactly once
    // (the sticky flag cannot let the budget re-arm).
    constexpr std::uint64_t kBudget = 50;
    makeSlave(kBudget);
    auto input = request(static_cast<std::int64_t>(os::Sys::Random),
                         /*cnt=*/5, /*site=*/3);
    os::Outcome out;

    std::uint64_t polls = 0;
    vm::PortReply reply = vm::PortReply::Blocked;
    while (reply == vm::PortReply::Blocked && polls < 10 * kBudget) {
        reply = slaveCtl_->onSyscall(input, slaveVm_, out);
        ++polls;
    }
    EXPECT_EQ(reply, vm::PortReply::Done);
    // Legacy budget semantics: with an idle peer every poll counts,
    // and the budget trips on poll kBudget + 1.
    EXPECT_EQ(polls, kBudget + 1);
    EXPECT_EQ(chan_.decouples->value(), 1u);
    EXPECT_EQ(chan_.syscallDiffs->value(), 1u);
    EXPECT_EQ(chan_.watchdogExpired->value(), 1u);
}

} // namespace
} // namespace ldx
