/**
 * @file
 * Lexer and parser coverage: token forms, precedence shapes, error
 * positions, and rejection of malformed programs.
 */
#include <gtest/gtest.h>

#include "lang/lexer.h"
#include "lang/parser.h"
#include "support/diag.h"

namespace ldx {
namespace {

using lang::Tok;

std::vector<lang::Token>
lexOf(const std::string &src)
{
    return lang::lex(src);
}

TEST(LexerTest, KeywordsVsIdentifiers)
{
    auto toks = lexOf("int interest if iffy");
    ASSERT_EQ(toks.size(), 5u); // + End
    EXPECT_EQ(toks[0].kind, Tok::KwInt);
    EXPECT_EQ(toks[1].kind, Tok::Ident);
    EXPECT_EQ(toks[1].text, "interest");
    EXPECT_EQ(toks[2].kind, Tok::KwIf);
    EXPECT_EQ(toks[3].kind, Tok::Ident);
}

TEST(LexerTest, NumbersDecimalAndHex)
{
    auto toks = lexOf("42 0x2A 0");
    EXPECT_EQ(toks[0].value, 42);
    EXPECT_EQ(toks[1].value, 42);
    EXPECT_EQ(toks[2].value, 0);
}

TEST(LexerTest, StringEscapes)
{
    auto toks = lexOf(R"("a\nb\t\"c\\")");
    ASSERT_EQ(toks[0].kind, Tok::String);
    EXPECT_EQ(toks[0].str, "a\nb\t\"c\\");
}

TEST(LexerTest, CharLiterals)
{
    auto toks = lexOf(R"('a' '\n' '\0')");
    EXPECT_EQ(toks[0].value, 'a');
    EXPECT_EQ(toks[1].value, '\n');
    EXPECT_EQ(toks[2].value, 0);
}

TEST(LexerTest, TwoCharOperators)
{
    auto toks = lexOf("== != <= >= << >> && || = < >");
    Tok expect[] = {Tok::Eq,     Tok::Ne,  Tok::Le,   Tok::Ge,
                    Tok::Shl,    Tok::Shr, Tok::AndAnd, Tok::OrOr,
                    Tok::Assign, Tok::Lt,  Tok::Gt};
    for (std::size_t i = 0; i < std::size(expect); ++i)
        EXPECT_EQ(toks[i].kind, expect[i]) << i;
}

TEST(LexerTest, LineAndColumnTracking)
{
    auto toks = lexOf("a\n  b");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[0].col, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[1].col, 3);
}

TEST(LexerTest, CommentsSkipped)
{
    auto toks = lexOf("a // c1\n/* c2 \n c3 */ b");
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_EQ(toks[2].kind, Tok::End);
}

TEST(LexerTest, Errors)
{
    EXPECT_THROW(lexOf("\"unterminated"), FatalError);
    EXPECT_THROW(lexOf("'ab'"), FatalError);
    EXPECT_THROW(lexOf("/* open"), FatalError);
    EXPECT_THROW(lexOf("int $"), FatalError);
    EXPECT_THROW(lexOf("\"bad \\q escape\""), FatalError);
}

TEST(ParserTest, PrecedenceShape)
{
    // a + b * c parses as a + (b * c).
    lang::Program p = lang::parse(
        "int main() { return 1 + 2 * 3; }");
    const lang::Stmt &ret = *p.functions[0].body->body[0];
    ASSERT_EQ(ret.kind, lang::Stmt::Kind::Return);
    const lang::Expr &e = *ret.expr;
    ASSERT_EQ(e.kind, lang::Expr::Kind::Binary);
    EXPECT_EQ(static_cast<Tok>(e.op), Tok::Plus);
    EXPECT_EQ(e.rhs->kind, lang::Expr::Kind::Binary);
    EXPECT_EQ(static_cast<Tok>(e.rhs->op), Tok::Star);
}

TEST(ParserTest, GlobalForms)
{
    lang::Program p = lang::parse(
        "int a; int b = 3; char buf[10]; char s[] = \"hi\";"
        "int main() { return 0; }");
    ASSERT_EQ(p.globals.size(), 4u);
    EXPECT_FALSE(p.globals[0].isArray);
    EXPECT_NE(p.globals[1].init, nullptr);
    EXPECT_TRUE(p.globals[2].isArray);
    EXPECT_EQ(p.globals[2].arraySize, 10);
    EXPECT_TRUE(p.globals[3].hasStrInit);
    EXPECT_EQ(p.globals[3].arraySize, 3); // "hi" + NUL
}

TEST(ParserTest, ParamTypes)
{
    lang::Program p = lang::parse(
        "int f(int a, char *s, int *p, fn g) { return a; }"
        "int main() { return 0; }");
    ASSERT_EQ(p.functions[0].params.size(), 4u);
    EXPECT_EQ(p.functions[0].params[0].type, lang::Type::Int);
    EXPECT_EQ(p.functions[0].params[1].type, lang::Type::CharPtr);
    EXPECT_EQ(p.functions[0].params[2].type, lang::Type::IntPtr);
    EXPECT_EQ(p.functions[0].params[3].type, lang::Type::FnPtr);
}

TEST(ParserTest, ForHeaderVariants)
{
    EXPECT_NO_THROW(lang::parse(
        "int main() { for (;;) { break; } return 0; }"));
    EXPECT_NO_THROW(lang::parse(
        "int main() { int i; for (i = 0; i < 3; i = i + 1) { } "
        "return i; }"));
}

TEST(ParserTest, SyntaxErrorsRejected)
{
    EXPECT_THROW(lang::parse("int main() { return 0 }"), FatalError);
    EXPECT_THROW(lang::parse("int main() { if 1 { } return 0; }"),
                 FatalError);
    EXPECT_THROW(lang::parse("int main( { return 0; }"), FatalError);
    EXPECT_THROW(lang::parse("int main() { int x[] ; return 0; }"),
                 FatalError);
    EXPECT_THROW(lang::parse("int main() { break }"), FatalError);
    EXPECT_THROW(lang::parse("int 5bad() { return 0; }"), FatalError);
}

TEST(ParserTest, ErrorMessageCarriesPosition)
{
    try {
        lang::parse("int main() {\n  return @;\n}");
        FAIL() << "expected a parse error";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("2"), std::string::npos);
    }
}

TEST(ParserTest, NestedIndexAndCalls)
{
    EXPECT_NO_THROW(lang::parse(
        "int g(int x) { return x; }"
        "int main() { int a[4]; a[g(a[0])] = g(g(1)); return a[0]; }"));
}

} // namespace
} // namespace ldx
