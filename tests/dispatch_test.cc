/**
 * @file
 * Dispatch-mode differential tests: switch, threaded (computed-goto),
 * and fused (threaded + superinstructions) are pure wall-clock knobs.
 * Every workload must retire bit-identical state — stats, exits,
 * traps, dual verdicts, and the flight recorder's event order — under
 * all three modes and at every stepMany batch size. On a build
 * without computed goto the threaded modes degrade to switch, so the
 * comparisons stay valid (they just compare switch to itself).
 */
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "ldx/engine.h"
#include "obs/recorder.h"
#include "os/kernel.h"
#include "query/campaign.h"
#include "vm/machine.h"
#include "vm/predecode.h"
#include "workloads/workloads.h"

namespace ldx {
namespace {

using core::DualResult;
using core::EngineConfig;
using workloads::Workload;

constexpr vm::DispatchMode kModes[] = {vm::DispatchMode::Switch,
                                       vm::DispatchMode::Threaded,
                                       vm::DispatchMode::Fused};

void
expectSameStats(const vm::MachineStats &a, const vm::MachineStats &b,
                const std::string &what)
{
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.syscalls, b.syscalls) << what;
    EXPECT_EQ(a.maxCnt, b.maxCnt) << what;
    EXPECT_DOUBLE_EQ(a.avgCnt, b.avgCnt) << what;
    EXPECT_EQ(a.maxCntDepth, b.maxCntDepth) << what;
    EXPECT_EQ(a.barriers, b.barriers) << what;
    EXPECT_EQ(a.mixData, b.mixData) << what;
    EXPECT_EQ(a.mixAlu, b.mixAlu) << what;
    EXPECT_EQ(a.mixMem, b.mixMem) << what;
    EXPECT_EQ(a.mixCall, b.mixCall) << what;
    EXPECT_EQ(a.mixBranch, b.mixBranch) << what;
    EXPECT_EQ(a.mixSyscall, b.mixSyscall) << what;
    EXPECT_EQ(a.mixCounter, b.mixCounter) << what;
}

TEST(DispatchModeTest, NamesRoundTrip)
{
    for (vm::DispatchMode m : kModes) {
        vm::DispatchMode parsed;
        ASSERT_TRUE(
            vm::parseDispatchMode(vm::dispatchModeName(m), parsed));
        EXPECT_EQ(parsed, m);
    }
    vm::DispatchMode out;
    EXPECT_FALSE(vm::parseDispatchMode("", out));
    EXPECT_FALSE(vm::parseDispatchMode("goto", out));
    EXPECT_FALSE(vm::parseDispatchMode("Switch", out));
}

class DispatchDifferential
    : public ::testing::TestWithParam<std::string>
{
  protected:
    const Workload &
    workload() const
    {
        const Workload *w = workloads::findWorkload(GetParam());
        EXPECT_NE(w, nullptr);
        return *w;
    }
};

/** Native single-VM run: all three modes vs the switch reference. */
TEST_P(DispatchDifferential, NativeRunIdenticalAcrossModes)
{
    const Workload &w = workload();
    const ir::Module &module = workloads::workloadModule(w, true);

    struct Outcome
    {
        vm::MachineStats stats;
        std::int64_t exit = 0;
        std::int64_t cnt = 0;
        std::string trap;
    };
    auto run = [&](vm::DispatchMode mode) {
        os::Kernel kernel(w.world(w.defaultScale));
        vm::MachineConfig cfg;
        cfg.dispatch = mode;
        vm::Machine m(module, kernel, cfg);
        m.run();
        Outcome o;
        o.stats = m.stats();
        o.exit = m.exitCode();
        o.cnt = m.context(0).cnt;
        o.trap = m.trap() ? m.trap()->message : "";
        return o;
    };

    Outcome ref = run(vm::DispatchMode::Switch);
    for (vm::DispatchMode mode : kModes) {
        SCOPED_TRACE(vm::dispatchModeName(mode));
        Outcome o = run(mode);
        EXPECT_EQ(o.exit, ref.exit);
        EXPECT_EQ(o.cnt, ref.cnt);
        EXPECT_EQ(o.trap, ref.trap);
        expectSameStats(o.stats, ref.stats,
                        w.name + "/" + vm::dispatchModeName(mode));
    }
}

/** Dual lockstep verdicts must not depend on the dispatch mode. */
TEST_P(DispatchDifferential, DualVerdictIdenticalAcrossModes)
{
    const Workload &w = workload();
    const ir::Module &module = workloads::workloadModule(w, true);

    auto run = [&](vm::DispatchMode mode) {
        EngineConfig cfg;
        cfg.sinks = w.sinks;
        cfg.sources = w.sources;
        cfg.wallClockCap = 60.0;
        cfg.vmConfig.dispatch = mode;
        core::DualEngine engine(module, w.world(w.defaultScale), cfg);
        return engine.run();
    };

    DualResult ref = run(vm::DispatchMode::Switch);
    for (vm::DispatchMode mode : kModes) {
        SCOPED_TRACE(vm::dispatchModeName(mode));
        DualResult res = run(mode);
        EXPECT_EQ(res.causality(), ref.causality());
        EXPECT_EQ(res.deadlocked, ref.deadlocked);
        EXPECT_EQ(res.alignedSyscalls, ref.alignedSyscalls);
        EXPECT_EQ(res.syscallDiffs, ref.syscallDiffs);
        EXPECT_EQ(res.barrierPairings, ref.barrierPairings);
        EXPECT_EQ(res.masterExit, ref.masterExit);
        EXPECT_EQ(res.slaveExit, ref.slaveExit);
        EXPECT_EQ(res.masterTrapMessage, ref.masterTrapMessage);
        EXPECT_EQ(res.slaveTrapMessage, ref.slaveTrapMessage);
        expectSameStats(res.masterStats, ref.masterStats,
                        w.name + "/master");
        expectSameStats(res.slaveStats, ref.slaveStats,
                        w.name + "/slave");
        EXPECT_EQ(res.taintedResources, ref.taintedResources);
        ASSERT_EQ(res.findings.size(), ref.findings.size());
        for (std::size_t i = 0; i < res.findings.size(); ++i)
            EXPECT_EQ(res.findings[i].describe(),
                      ref.findings[i].describe());
    }
}

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names;
    for (const Workload &w : workloads::allWorkloads())
        names.push_back(w.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DispatchDifferential,
    ::testing::ValuesIn(allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

/**
 * stepMany batch boundaries x dispatch modes: the threaded dispatcher
 * chains runs, so slice boundaries land differently inside it — but
 * retirement must still be exact at every budget, including budget 1
 * (which can never fuse) and a prime that splits runs mid-pair.
 */
TEST(DispatchBatchTest, FinalStateIndependentOfBatchAndMode)
{
    const Workload *w = workloads::findWorkload("401.bzip2");
    ASSERT_NE(w, nullptr);
    const ir::Module &module = workloads::workloadModule(*w, true);

    struct Outcome
    {
        std::int64_t exit = 0;
        std::int64_t cnt = 0;
        vm::MachineStats stats;
    };
    auto run = [&](vm::DispatchMode mode, std::uint64_t batch) {
        os::Kernel kernel(w->world(w->defaultScale));
        vm::MachineConfig cfg;
        cfg.dispatch = mode;
        vm::Machine m(module, kernel, cfg);
        m.start();
        std::uint64_t budget =
            batch ? batch : std::numeric_limits<std::uint64_t>::max();
        vm::StepStatus st = vm::StepStatus::Progress;
        while (st == vm::StepStatus::Progress) {
            std::uint64_t got = 0;
            st = m.stepMany(budget, got);
        }
        EXPECT_EQ(st, vm::StepStatus::Finished)
            << (m.trap() ? m.trap()->message : "");
        Outcome o;
        o.exit = m.exitCode();
        o.cnt = m.context(0).cnt;
        o.stats = m.stats();
        return o;
    };

    Outcome ref = run(vm::DispatchMode::Switch, 64);
    EXPECT_GT(ref.cnt, 0);
    for (vm::DispatchMode mode : kModes) {
        for (std::uint64_t batch : {std::uint64_t{1}, std::uint64_t{7},
                                    std::uint64_t{64},
                                    std::uint64_t{0}}) {
            SCOPED_TRACE(std::string(vm::dispatchModeName(mode)) +
                         " batch " + std::to_string(batch));
            Outcome o = run(mode, batch);
            EXPECT_EQ(o.exit, ref.exit);
            EXPECT_EQ(o.cnt, ref.cnt);
            expectSameStats(o.stats, ref.stats,
                            vm::dispatchModeName(mode));
        }
    }
}

/**
 * The flight recorder's event sequence is part of the contract: the
 * forensics a user sees must not depend on how the interpreter
 * dispatches.
 */
TEST(DispatchBatchTest, RecorderEventOrderIndependentOfMode)
{
    const Workload *w = workloads::findWorkload("gif2png");
    ASSERT_NE(w, nullptr);
    const ir::Module &module = workloads::workloadModule(*w, true);

    auto run = [&](vm::DispatchMode mode) {
        EngineConfig cfg;
        cfg.sinks = w->sinks;
        cfg.sources = w->sources;
        cfg.flightRecorder = true;
        cfg.wallClockCap = 60.0;
        cfg.vmConfig.dispatch = mode;
        core::DualEngine engine(module, w->world(w->defaultScale), cfg);
        return engine.run();
    };
    auto timeline = [](const DualResult &res, int side) {
        std::vector<std::string> keys;
        for (const obs::RecEvent &e : res.divergence.events[side]) {
            std::ostringstream os;
            os << obs::recKindName(e.kind) << " tid=" << e.tid
               << " cnt=" << e.cnt << " site=" << e.site
               << " sys=" << e.sysNo << " arg=" << e.arg;
            keys.push_back(os.str());
        }
        return keys;
    };

    DualResult ref = run(vm::DispatchMode::Switch);
    ASSERT_TRUE(ref.divergence.present);
    for (vm::DispatchMode mode : kModes) {
        SCOPED_TRACE(vm::dispatchModeName(mode));
        DualResult res = run(mode);
        EXPECT_EQ(res.causality(), ref.causality());
        ASSERT_TRUE(res.divergence.present);
        EXPECT_EQ(timeline(res, 0), timeline(ref, 0));
        EXPECT_EQ(timeline(res, 1), timeline(ref, 1));
    }
}

/**
 * Campaign graphs must be byte-identical with and without a shared
 * predecoded module (the image-cache path injects one), and across
 * dispatch modes.
 */
TEST(DispatchCampaignTest, GraphByteIdenticalAcrossConfigs)
{
    const Workload *w = workloads::findWorkload("gif2png");
    ASSERT_NE(w, nullptr);
    const ir::Module &module = workloads::workloadModule(*w, true);

    auto run = [&](vm::DispatchMode mode, bool shared_predecode) {
        query::CampaignConfig cfg;
        cfg.sinks = w->sinks;
        cfg.vmConfig.dispatch = mode;
        if (shared_predecode) {
            auto pre = std::make_shared<vm::PredecodedModule>(module);
            pre->decodeAll();
            cfg.vmConfig.predecoded = std::move(pre);
        }
        query::CampaignResult res =
            query::runCampaign(module, w->world(w->defaultScale), cfg);
        return res.graph.toJson();
    };

    std::string ref = run(vm::DispatchMode::Switch, false);
    EXPECT_EQ(run(vm::DispatchMode::Fused, false), ref);
    EXPECT_EQ(run(vm::DispatchMode::Fused, true), ref);
    EXPECT_EQ(run(vm::DispatchMode::Threaded, true), ref);
}

} // namespace
} // namespace ldx
