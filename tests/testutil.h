/**
 * @file
 * Shared helpers for the test suite: compile MiniC and run it natively
 * (no dual execution) against a WorldSpec.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lang/compiler.h"
#include "os/kernel.h"
#include "vm/machine.h"

namespace ldx::test {

/** Outcome of a native run. */
struct RunResult
{
    vm::StepStatus status = vm::StepStatus::Finished;
    std::int64_t exitCode = 0;
    std::vector<os::OutputRecord> outputs;
    std::string trapMessage;

    /** Concatenated console output. */
    std::string
    console() const
    {
        std::string out;
        for (const auto &rec : outputs) {
            if (rec.channel == "console")
                out += rec.payload;
        }
        return out;
    }
};

/** Compile @p source and run main() to completion natively. */
inline RunResult
runProgram(const std::string &source, const os::WorldSpec &spec = {},
           vm::MachineConfig cfg = {})
{
    auto module = lang::compileSource(source);
    os::Kernel kernel(spec);
    vm::Machine machine(*module, kernel, cfg);
    RunResult result;
    result.status = machine.run();
    result.exitCode = machine.exitCode();
    result.outputs = kernel.outputs();
    if (machine.trap())
        result.trapMessage = machine.trap()->message;
    return result;
}

} // namespace ldx::test
