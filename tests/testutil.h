/**
 * @file
 * Shared helpers for the test suite: compile MiniC and run it natively
 * (no dual execution) against a WorldSpec, plus a small JSON validator
 * for pinning the machine-readable output schemas (the obs emitters
 * are write-only; nothing in the library parses JSON back).
 */
#pragma once

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include "lang/compiler.h"
#include "os/kernel.h"
#include "vm/machine.h"

namespace ldx::test {

/** Outcome of a native run. */
struct RunResult
{
    vm::StepStatus status = vm::StepStatus::Finished;
    std::int64_t exitCode = 0;
    std::vector<os::OutputRecord> outputs;
    std::string trapMessage;

    /** Concatenated console output. */
    std::string
    console() const
    {
        std::string out;
        for (const auto &rec : outputs) {
            if (rec.channel == "console")
                out += rec.payload;
        }
        return out;
    }
};

/** Compile @p source and run main() to completion natively. */
inline RunResult
runProgram(const std::string &source, const os::WorldSpec &spec = {},
           vm::MachineConfig cfg = {})
{
    auto module = lang::compileSource(source);
    os::Kernel kernel(spec);
    vm::Machine machine(*module, kernel, cfg);
    RunResult result;
    result.status = machine.run();
    result.exitCode = machine.exitCode();
    result.outputs = kernel.outputs();
    if (machine.trap())
        result.trapMessage = machine.trap()->message;
    return result;
}

namespace detail {

/** Recursive-descent JSON value check; advances @p i past the value. */
inline bool
jsonValue(const std::string &s, std::size_t &i)
{
    auto ws = [&] {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
    };
    auto literal = [&](const char *lit) {
        std::size_t n = std::string(lit).size();
        if (s.compare(i, n, lit) != 0)
            return false;
        i += n;
        return true;
    };
    ws();
    if (i >= s.size())
        return false;
    char c = s[i];
    if (c == '"') {
        ++i;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\') {
                ++i;
                if (i >= s.size())
                    return false;
                if (s[i] == 'u') {
                    for (int k = 0; k < 4; ++k) {
                        ++i;
                        if (i >= s.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(s[i])))
                            return false;
                    }
                }
            }
            ++i;
        }
        if (i >= s.size())
            return false;
        ++i;
        return true;
    }
    if (c == '{') {
        ++i;
        ws();
        if (i < s.size() && s[i] == '}') {
            ++i;
            return true;
        }
        while (true) {
            ws();
            if (i >= s.size() || s[i] != '"' || !jsonValue(s, i))
                return false;
            ws();
            if (i >= s.size() || s[i] != ':')
                return false;
            ++i;
            if (!jsonValue(s, i))
                return false;
            ws();
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            break;
        }
        if (i >= s.size() || s[i] != '}')
            return false;
        ++i;
        return true;
    }
    if (c == '[') {
        ++i;
        ws();
        if (i < s.size() && s[i] == ']') {
            ++i;
            return true;
        }
        while (true) {
            if (!jsonValue(s, i))
                return false;
            ws();
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            break;
        }
        if (i >= s.size() || s[i] != ']')
            return false;
        ++i;
        return true;
    }
    if (literal("true") || literal("false") || literal("null"))
        return true;
    // Number.
    std::size_t start = i;
    if (i < s.size() && s[i] == '-')
        ++i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) ||
            s[i] == '.' || s[i] == 'e' || s[i] == 'E' || s[i] == '+' ||
            s[i] == '-'))
        ++i;
    return i > start;
}

} // namespace detail

/** True iff @p text is exactly one syntactically valid JSON value. */
inline bool
validJson(const std::string &text)
{
    std::size_t i = 0;
    if (!detail::jsonValue(text, i))
        return false;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])))
        ++i;
    return i == text.size();
}

/** True iff every non-empty line of @p text is a valid JSON value. */
inline bool
validJsonl(const std::string &text)
{
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            nl = text.size();
        std::string line = text.substr(pos, nl - pos);
        bool blank = true;
        for (char c : line)
            blank = blank &&
                    std::isspace(static_cast<unsigned char>(c));
        if (!blank && !validJson(line))
            return false;
        pos = nl + 1;
    }
    return true;
}

} // namespace ldx::test
