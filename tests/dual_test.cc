/**
 * @file
 * Dual-execution engine tests: the paper's running examples and the
 * core guarantees — nondeterminism suppression while coupled,
 * realignment across path differences, and causality verdicts at
 * sinks (Algorithm 2 cases).
 */
#include <gtest/gtest.h>

#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "ldx/engine.h"
#include "support/diag.h"

namespace ldx {
namespace {

using core::CauseKind;
using core::DualEngine;
using core::DualResult;
using core::EngineConfig;
using core::SourceSpec;

/** Compile + instrument once per source text. */
const ir::Module &
instrumentedModule(const std::string &source)
{
    static std::map<std::string, std::unique_ptr<ir::Module>> cache;
    auto it = cache.find(source);
    if (it == cache.end()) {
        auto module = lang::compileSource(source);
        instrument::CounterInstrumenter pass(*module);
        pass.run();
        it = cache.emplace(source, std::move(module)).first;
    }
    return *it->second;
}

DualResult
dualRun(const std::string &source, const os::WorldSpec &world,
        EngineConfig cfg = {})
{
    cfg.wallClockCap = 20.0;
    DualEngine engine(instrumentedModule(source), world, cfg);
    DualResult res = engine.run();
    EXPECT_FALSE(res.deadlocked) << "dual execution deadlocked";
    return res;
}

bool
hasFinding(const DualResult &res, CauseKind kind)
{
    for (const auto &f : res.findings) {
        if (f.kind == kind)
            return true;
    }
    return false;
}

// ---------------------------------------------------------------------
// Nondeterminism suppression: with no mutation, the slave must follow
// the master bit for bit even though its clock, PRNG, pid, and heap
// base all differ.
// ---------------------------------------------------------------------

TEST(DualTest, NoMutationMeansNoCausality)
{
    const char *src = R"(
int main() {
    char buf[64];
    int t = time();
    int r = random();
    int p = getpid();
    itoa(t + r + p, buf);
    int s = socket();
    connect(s, "out.example.com");
    send(s, buf, strlen(buf));
    return 0;
}
)";
    os::WorldSpec w;
    w.peers["out.example.com"] = {};
    auto res = dualRun(src, w);
    EXPECT_FALSE(res.causality())
        << "first finding: " << res.findings[0].describe();
    EXPECT_EQ(res.syscallDiffs, 0u);
    EXPECT_GT(res.alignedSyscalls, 0u);
}

TEST(DualTest, HeapPointerValuesAreCoupledViaOutcomes)
{
    // The heap bases differ; printing *derived data* (not pointers)
    // must not diverge.
    const char *src = R"(
int main() {
    int *p = imalloc(8);
    p[0] = random() % 100;
    char buf[24];
    itoa(p[0], buf);
    print(buf, strlen(buf));
    return 0;
}
)";
    auto res = dualRun(src, {});
    EXPECT_FALSE(res.causality());
}

// ---------------------------------------------------------------------
// The paper's running example (Figs. 2-3): the secret 'title' decides
// which raise routine runs; the raise value reaches a network sink.
// The causality is control-dependence induced — exactly what data-dep
// tainting misses and LDX catches.
// ---------------------------------------------------------------------

const char *kEmployee = R"(
int SRaise(int salary, char *contract) {
    char buf[16];
    int fd = open(contract, 0);
    int n = read(fd, buf, 8);
    close(fd);
    return salary / 100 + (buf[0] - '0');
}

int MRaise(int salary, int age) {
    int raise = SRaise(salary, "/contract_m.txt");
    if (age > 10) {
        int fd = open("/seniors.txt", 2);
        write(fd, "senior\n", 7);
        close(fd);
    }
    return raise + 100;
}

int main() {
    char title[16];
    char name[16];
    int raise = 0;
    getenv("TITLE", title, 16);
    getenv("NAME", name, 16);
    int salary = 4000;
    int age = 5;
    if (title[0] == 'S') {
        raise = SRaise(salary, "/contract_s.txt");
    } else {
        raise = MRaise(salary, age);
    }
    char buf[32];
    itoa(raise, buf);
    int s = socket();
    connect(s, "hr.example.com");
    send(s, name, strlen(name));
    send(s, buf, strlen(buf));
    return 0;
}
)";

os::WorldSpec
employeeWorld()
{
    os::WorldSpec w;
    w.env["TITLE"] = "STAFF";
    w.env["NAME"] = "alice";
    w.files["/contract_s.txt"] = "3xxxxxxx";
    w.files["/contract_m.txt"] = "5xxxxxxx";
    w.peers["hr.example.com"] = {};
    return w;
}

TEST(DualTest, EmployeeLeakDetectedThroughControlDependence)
{
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("TITLE")};
    auto res = dualRun(kEmployee, employeeWorld(), cfg);
    EXPECT_TRUE(res.causality());
    EXPECT_TRUE(hasFinding(res, CauseKind::SinkValueDiff) ||
                hasFinding(res, CauseKind::SinkVanished) ||
                hasFinding(res, CauseKind::SinkSiteMismatch));
    // Path difference implies misaligned syscalls that LDX tolerated.
    EXPECT_GT(res.syscallDiffs, 0u);
}

TEST(DualTest, EmployeeRealignsAfterBranchDifference)
{
    // The 'name' send at the join point aligns in both executions even
    // though the branches took different syscall paths; only the raise
    // payload differs.
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("TITLE")};
    auto res = dualRun(kEmployee, employeeWorld(), cfg);
    bool name_diff = false;
    for (const auto &f : res.findings) {
        if (f.masterValue.find("alice") != std::string::npos &&
            f.slaveValue != f.masterValue)
            name_diff = true;
    }
    EXPECT_FALSE(name_diff)
        << "the name sink must align and compare equal";
}

TEST(DualTest, MutatingIrrelevantSourceReportsNothing)
{
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("UNUSED")};
    os::WorldSpec w = employeeWorld();
    w.env["UNUSED"] = "zzz";
    auto res = dualRun(kEmployee, w, cfg);
    EXPECT_FALSE(res.causality());
    EXPECT_EQ(res.syscallDiffs, 0u);
}

TEST(DualTest, NameMutationFlowsToSinkByDataDependence)
{
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("NAME")};
    auto res = dualRun(kEmployee, employeeWorld(), cfg);
    EXPECT_TRUE(hasFinding(res, CauseKind::SinkValueDiff));
}

// ---------------------------------------------------------------------
// Fig. 1 cases: (c) weak causality must NOT be reported; (d) strong
// causality missed by data+control dependence tracking must be.
// ---------------------------------------------------------------------

TEST(DualTest, WeakCausalityNotReported)
{
    // x = (s > 10) collapses many source values to the same output:
    // with s=50 master and s=51 slave (off-by-one on ASCII digits
    // keeps it > 10), the sink payload is identical -> no report.
    const char *src = R"(
int main() {
    char buf[16];
    getenv("S", buf, 16);
    int s = atoi(buf);
    int x = 0;
    if (s > 10) { x = 1; }
    char out[8];
    itoa(x, out);
    print(out, strlen(out));
    return 0;
}
)";
    os::WorldSpec w;
    w.env["S"] = "50";
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("S")};
    auto res = dualRun(src, w, cfg);
    EXPECT_FALSE(res.causality());
}

TEST(DualTest, StrongCausalityThroughNonUpdateDetected)
{
    // Fig. 1 (d): the else branch leaves x at its old value; the
    // "absence of update" still leaks s. Dependence tracking misses
    // this; counterfactual comparison does not.
    const char *src = R"(
int main() {
    char buf[16];
    getenv("S", buf, 16);
    int s = buf[0] - '0';
    int x = 0;
    if (s != 1) { x = 1; }
    char out[8];
    itoa(x, out);
    print(out, strlen(out));
    return 0;
}
)";
    os::WorldSpec w;
    w.env["S"] = "1"; // master: else branch, x stays 0; slave: s=2 -> x=1
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("S")};
    auto res = dualRun(src, w, cfg);
    EXPECT_TRUE(hasFinding(res, CauseKind::SinkValueDiff));
}

// ---------------------------------------------------------------------
// The loop example (Figs. 4-5): trip counts of nested loops are the
// sources; iteration-level barrier synchronization realigns the runs.
// ---------------------------------------------------------------------

const char *kLoopProgram = R"(
int main() {
    char buf[8];
    int fd = open("/nm.txt", 0);
    read(fd, buf, 2);
    int n = buf[0] - '0';
    int m = buf[1] - '0';
    int total = 0;
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < m; j = j + 1) {
            char one[2];
            read(fd, one, 1);
            total = total + one[0];
        }
        int lg = open("/log.txt", 2);
        write(lg, "x", 1);
        close(lg);
    }
    char out[24];
    itoa(total, out);
    int s = socket();
    connect(s, "sink.example.com");
    send(s, out, strlen(out));
    return 0;
}
)";

TEST(DualTest, LoopBoundMutationDetected)
{
    os::WorldSpec w;
    w.files["/nm.txt"] = "23abcdefghijklmnop";
    w.peers["sink.example.com"] = {};
    EngineConfig cfg;
    cfg.sources = {SourceSpec::file("/nm.txt")}; // mutates '2' -> '3'
    cfg.sinks.file = false; // network sink only (log writes ignored)
    auto res = dualRun(kLoopProgram, w, cfg);
    EXPECT_TRUE(res.causality());
}

TEST(DualTest, EqualLoopBoundsStayAligned)
{
    os::WorldSpec w;
    w.files["/nm.txt"] = "23abcdefghijklmnop";
    w.peers["sink.example.com"] = {};
    EngineConfig cfg; // no mutation
    auto res = dualRun(kLoopProgram, w, cfg);
    EXPECT_FALSE(res.causality());
    EXPECT_EQ(res.syscallDiffs, 0u);
    EXPECT_GT(res.barrierPairings, 0u) << "loops must rendezvous";
}

// ---------------------------------------------------------------------
// Realignment: mutation triggers a burst of extra syscalls, then the
// executions re-join; the later, source-independent sink must align.
// ---------------------------------------------------------------------

TEST(DualTest, RealignmentAfterSyscallBurst)
{
    const char *src = R"(
int main() {
    char mode[8];
    getenv("MODE", mode, 8);
    if (mode[0] == 'v') {
        for (int i = 0; i < 5; i = i + 1) {
            int fd = open("/scratch.txt", 2);
            write(fd, "v", 1);
            close(fd);
        }
    }
    int s = socket();
    connect(s, "stable.example.com");
    send(s, "constant-payload", 16);
    return 0;
}
)";
    os::WorldSpec w;
    w.env["MODE"] = "u"; // slave sees 'v' after off-by-one
    w.peers["stable.example.com"] = {};
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("MODE")};
    cfg.sinks.file = false;
    auto res = dualRun(src, w, cfg);
    // Many misaligned syscalls, yet the network sink carries the same
    // constant payload: no causality to the sink.
    EXPECT_GT(res.syscallDiffs, 0u);
    EXPECT_FALSE(res.causality())
        << res.findings[0].describe();
}

// ---------------------------------------------------------------------
// Attack detection (vulnerable program set): stack smashing visible
// at return-token sinks, integer overflow at malloc-argument sinks.
// ---------------------------------------------------------------------

TEST(DualTest, StackSmashAttackDetected)
{
    const char *src = R"(
int handle(char *req) {
    char buf[16];
    strcpy(buf, req);
    return strlen(buf);
}

int main() {
    char req[256];
    int s = socket();
    listen(s, 80);
    int c = accept(s);
    int n = recv(c, req, 256);
    req[n] = 0;
    handle(req);
    print("served", 6);
    return 0;
}
)";
    os::WorldSpec w;
    std::string attack(64, 'A'); // overflows buf[16] into the token
    w.incoming.push_back({attack});
    EngineConfig cfg;
    // Mutate a byte that lands in the overflow region beyond buf[16],
    // so the corrupted token value depends on the mutated input (the
    // paper mutates the relevant data field of the exploit input).
    cfg.sources = {SourceSpec::incoming(20)};
    cfg.sinks.retTokens = true;
    auto res = dualRun(src, w, cfg);
    EXPECT_TRUE(hasFinding(res, CauseKind::RetTokenDiff) ||
                hasFinding(res, CauseKind::TerminationDiff));
}

TEST(DualTest, BenignRequestNoAttackReport)
{
    const char *src = R"(
int handle(char *req) {
    char buf[64];
    strcpy(buf, req);
    return strlen(buf);
}

int main() {
    char req[256];
    int s = socket();
    listen(s, 80);
    int c = accept(s);
    int n = recv(c, req, 256);
    req[n] = 0;
    handle(req);
    print("served", 6);
    return 0;
}
)";
    os::WorldSpec w;
    w.incoming.push_back({"hello"});
    EngineConfig cfg;
    cfg.sources = {SourceSpec::incoming()};
    cfg.sinks.retTokens = true;
    cfg.sinks.console = false;
    auto res = dualRun(src, w, cfg);
    EXPECT_FALSE(hasFinding(res, CauseKind::RetTokenDiff));
    EXPECT_FALSE(hasFinding(res, CauseKind::TerminationDiff));
}

TEST(DualTest, IntegerOverflowAttackDetected)
{
    const char *src = R"(
int main() {
    char lenstr[16];
    getenv("LEN", lenstr, 16);
    int n = atoi(lenstr);
    char *p = malloc(n * 1000000007);  // attacker-controlled size
    print("alloc", 5);
    return 0;
}
)";
    os::WorldSpec w;
    w.env["LEN"] = "4";
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("LEN")};
    cfg.sinks.allocSizes = true;
    cfg.sinks.console = false;
    auto res = dualRun(src, w, cfg);
    EXPECT_TRUE(hasFinding(res, CauseKind::AllocSizeDiff) ||
                hasFinding(res, CauseKind::TerminationDiff));
}

// ---------------------------------------------------------------------
// Recursion and indirect calls under mutation.
// ---------------------------------------------------------------------

TEST(DualTest, RecursionDepthLeakDetected)
{
    const char *src = R"(
int walk(int d) {
    if (d <= 0) { return 0; }
    time();
    return 1 + walk(d - 1);
}

int main() {
    char buf[8];
    getenv("DEPTH", buf, 8);
    int d = buf[0] - '0';
    int r = walk(d);
    char out[8];
    itoa(r, out);
    print(out, strlen(out));
    return 0;
}
)";
    os::WorldSpec w;
    w.env["DEPTH"] = "3";
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("DEPTH")};
    auto res = dualRun(src, w, cfg);
    EXPECT_TRUE(res.causality());
}

TEST(DualTest, IndirectCallTargetLeakDetected)
{
    const char *src = R"(
int low(int x) { return x; }
int high(int x) { time(); return x * 2; }

int main() {
    char buf[8];
    getenv("PRIV", buf, 8);
    fn f = &low;
    if (buf[0] == 'h') { f = &high; }
    int v = f(21);
    char out[8];
    itoa(v, out);
    print(out, strlen(out));
    return 0;
}
)";
    os::WorldSpec w;
    w.env["PRIV"] = "g"; // slave sees 'h' -> different target
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("PRIV")};
    auto res = dualRun(src, w, cfg);
    EXPECT_TRUE(hasFinding(res, CauseKind::SinkValueDiff));
}

// ---------------------------------------------------------------------
// Threaded driver: same verdicts with real concurrency.
// ---------------------------------------------------------------------

TEST(DualTest, ThreadedDriverDetectsLeak)
{
    EngineConfig cfg;
    cfg.sources = {SourceSpec::env("TITLE")};
    cfg.threaded = true;
    auto res = dualRun(kEmployee, employeeWorld(), cfg);
    EXPECT_TRUE(res.causality());
}

TEST(DualTest, ThreadedDriverNoFalsePositives)
{
    EngineConfig cfg;
    cfg.threaded = true;
    auto res = dualRun(kEmployee, employeeWorld(), cfg);
    EXPECT_FALSE(res.causality());
    EXPECT_EQ(res.syscallDiffs, 0u);
}

// ---------------------------------------------------------------------
// Multi-threaded guests: thread pairing and lock-order sharing.
// ---------------------------------------------------------------------

const char *kThreaded = R"(
int counter;

int worker(int arg) {
    for (int i = 0; i < 10; i = i + 1) {
        lock(1);
        counter = counter + 1;
        unlock(1);
    }
    return arg;
}

int main() {
    counter = 0;
    int t1 = spawn(&worker, 1);
    int t2 = spawn(&worker, 2);
    join(t1);
    join(t2);
    char out[16];
    itoa(counter, out);
    print(out, strlen(out));
    return 0;
}
)";

TEST(DualTest, ThreadedGuestAligns)
{
    EngineConfig cfg;
    auto res = dualRun(kThreaded, {}, cfg);
    EXPECT_FALSE(res.causality())
        << res.findings[0].describe();
}

TEST(DualTest, UninstrumentedModuleRejected)
{
    auto module = lang::compileSource("int main() { return 0; }");
    EXPECT_THROW(DualEngine(*module, {}, {}), FatalError);
}

} // namespace
} // namespace ldx
