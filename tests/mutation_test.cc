/**
 * @file
 * Mutation-policy unit tests: every strategy must produce a value
 * that differs from the baseline and stays inside its documented
 * domain (mutation.h), for single-byte, clamped, and whole-value
 * offsets, and mutateWorld must taint exactly the named resources.
 */
#include <gtest/gtest.h>

#include "ldx/mutation.h"

namespace ldx {
namespace {

using core::MutationStrategy;
using core::SourceSpec;
using core::mutateByteAt;
using core::mutateWorld;

TEST(MutationPolicy, OffByOneIncrementsByteAndWraps)
{
    Prng prng(1);
    std::string v = "abc";
    ASSERT_TRUE(mutateByteAt(v, 0, MutationStrategy::OffByOne, prng));
    EXPECT_EQ(v, "bbc");

    std::string wrap("\xff", 1);
    ASSERT_TRUE(
        mutateByteAt(wrap, 0, MutationStrategy::OffByOne, prng));
    EXPECT_EQ(wrap[0], '\0'); // 255 + 1 wraps to 0
}

TEST(MutationPolicy, ZeroClearsByteAndIsIdempotent)
{
    Prng prng(1);
    std::string v = "abc";
    ASSERT_TRUE(mutateByteAt(v, 1, MutationStrategy::Zero, prng));
    EXPECT_EQ(v[0], 'a');
    EXPECT_EQ(v[1], '\0');
    EXPECT_EQ(v[2], 'c');

    // An already-zero byte cannot change: no mutation happened.
    EXPECT_FALSE(mutateByteAt(v, 1, MutationStrategy::Zero, prng));
    EXPECT_EQ(v[1], '\0');
}

TEST(MutationPolicy, BitFlipTogglesLowestBit)
{
    Prng prng(1);
    std::string v = "abc"; // 'a' == 0x61
    ASSERT_TRUE(mutateByteAt(v, 0, MutationStrategy::BitFlip, prng));
    EXPECT_EQ(v[0], '`'); // 0x60
    ASSERT_TRUE(mutateByteAt(v, 0, MutationStrategy::BitFlip, prng));
    EXPECT_EQ(v[0], 'a'); // flipping twice restores the baseline
}

TEST(MutationPolicy, RandomAlwaysDiffersFromBaseline)
{
    // The random policy re-rolls collisions into +1, so the mutated
    // byte must differ from the baseline for every seed.
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        Prng prng(seed);
        std::string v = "x";
        ASSERT_TRUE(
            mutateByteAt(v, 0, MutationStrategy::Random, prng));
        EXPECT_NE(v[0], 'x') << "seed " << seed;
    }
}

TEST(MutationPolicy, WholeValuePerturbsEveryByte)
{
    Prng prng(1);
    std::string v = "abcd";
    ASSERT_TRUE(mutateByteAt(v, SourceSpec::kWholeValue,
                             MutationStrategy::OffByOne, prng));
    EXPECT_EQ(v, "bcde");
}

TEST(MutationPolicy, OffsetClampsToLastByte)
{
    Prng prng(1);
    std::string v = "abc";
    ASSERT_TRUE(mutateByteAt(v, 99, MutationStrategy::OffByOne, prng));
    EXPECT_EQ(v, "abd");
}

TEST(MutationPolicy, EmptyValueNeverMutates)
{
    Prng prng(1);
    std::string v;
    for (MutationStrategy s :
         {MutationStrategy::OffByOne, MutationStrategy::Zero,
          MutationStrategy::BitFlip, MutationStrategy::Random}) {
        EXPECT_FALSE(mutateByteAt(v, 0, s, prng));
        EXPECT_TRUE(v.empty());
    }
}

TEST(MutationPolicy, MutateWorldTaintsNamedResources)
{
    os::WorldSpec world;
    world.env["SECRET"] = "abc";
    world.files["/data.txt"] = "hello";
    Prng prng(1);
    core::MutatedWorld out = mutateWorld(
        world,
        {SourceSpec::env("SECRET"), SourceSpec::file("/data.txt")},
        MutationStrategy::OffByOne, prng);
    EXPECT_TRUE(out.anyChange);
    EXPECT_EQ(out.world.env["SECRET"], "bbc");
    EXPECT_EQ(out.world.files["/data.txt"], "iello");
    ASSERT_EQ(out.taintKeys.size(), 2u);
    EXPECT_EQ(out.taintKeys[0], "env:SECRET");
    EXPECT_EQ(out.taintKeys[1], "path:/data.txt");
}

TEST(MutationPolicy, MutateWorldIgnoresAbsentResources)
{
    os::WorldSpec world;
    world.env["PRESENT"] = "x";
    Prng prng(1);
    core::MutatedWorld out =
        mutateWorld(world, {SourceSpec::env("ABSENT")},
                    MutationStrategy::OffByOne, prng);
    EXPECT_FALSE(out.anyChange);
    EXPECT_EQ(out.world.env["PRESENT"], "x");
    // The resource is still pre-tainted: the slave's read of it must
    // not be overwritten by the coupling even if nothing changed.
    ASSERT_EQ(out.taintKeys.size(), 1u);
    EXPECT_EQ(out.taintKeys[0], "env:ABSENT");
}

// Every strategy stays in-domain for every input byte value.
TEST(MutationPolicy, DomainsHoldForAllByteValues)
{
    Prng prng(123);
    for (int b = 0; b < 256; ++b) {
        unsigned char before = static_cast<unsigned char>(b);
        std::string v(1, static_cast<char>(before));

        std::string off = v;
        mutateByteAt(off, 0, MutationStrategy::OffByOne, prng);
        EXPECT_EQ(static_cast<unsigned char>(off[0]),
                  static_cast<unsigned char>(before + 1));

        std::string zero = v;
        mutateByteAt(zero, 0, MutationStrategy::Zero, prng);
        EXPECT_EQ(zero[0], '\0');

        std::string flip = v;
        mutateByteAt(flip, 0, MutationStrategy::BitFlip, prng);
        EXPECT_EQ(static_cast<unsigned char>(flip[0]), before ^ 1u);

        std::string rnd = v;
        ASSERT_TRUE(
            mutateByteAt(rnd, 0, MutationStrategy::Random, prng));
        EXPECT_NE(static_cast<unsigned char>(rnd[0]), before);
    }
}

} // namespace
} // namespace ldx
