/**
 * @file
 * Virtual OS tests: VFS semantics, kernel syscalls driven from MiniC
 * programs, scripted network peers, and the replay path used by the
 * dual-execution slave.
 */
#include <gtest/gtest.h>

#include "os/vfs.h"
#include "testutil.h"

namespace ldx {
namespace {

using test::runProgram;

TEST(VfsTest, NormalizePaths)
{
    EXPECT_EQ(os::Vfs::normalize("/a//b/./c"), "/a/b/c");
    EXPECT_EQ(os::Vfs::normalize("a/b"), "/a/b");
    EXPECT_EQ(os::Vfs::normalize("/"), "/");
    EXPECT_EQ(os::Vfs::normalize(""), "/");
}

TEST(VfsTest, CreateAndStat)
{
    os::Vfs vfs;
    EXPECT_TRUE(vfs.createFile("/f.txt", 100));
    vfs.setContent("/f.txt", "hello", 101);
    auto st = vfs.stat("/f.txt");
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->size, 5);
    EXPECT_EQ(st->mtime, 101);
    EXPECT_FALSE(vfs.stat("/nope").has_value());
}

TEST(VfsTest, MkdirRmdirRules)
{
    os::Vfs vfs;
    EXPECT_TRUE(vfs.mkdir("/d", 1));
    EXPECT_FALSE(vfs.mkdir("/d", 1));       // exists
    EXPECT_FALSE(vfs.mkdir("/x/y", 1));     // missing parent
    EXPECT_TRUE(vfs.createFile("/d/f", 1));
    EXPECT_FALSE(vfs.rmdir("/d"));          // not empty
    EXPECT_TRUE(vfs.unlink("/d/f"));
    EXPECT_TRUE(vfs.rmdir("/d"));
    EXPECT_FALSE(vfs.rmdir("/"));           // never remove root
}

TEST(VfsTest, RenameMovesSubtree)
{
    os::Vfs vfs;
    ASSERT_TRUE(vfs.mkdir("/a", 1));
    ASSERT_TRUE(vfs.createFile("/a/f", 1));
    vfs.setContent("/a/f", "data", 1);
    EXPECT_TRUE(vfs.rename("/a", "/b", 2));
    EXPECT_FALSE(vfs.exists("/a"));
    EXPECT_TRUE(vfs.isFile("/b/f"));
    EXPECT_EQ(vfs.content("/b/f"), "data");
    // Renaming into one's own subtree must fail.
    ASSERT_TRUE(vfs.mkdir("/c", 1));
    EXPECT_FALSE(vfs.rename("/c", "/c/inner", 2));
}

TEST(KernelTest, FileReadWrite)
{
    os::WorldSpec spec;
    spec.files["/in.txt"] = "abcdef";
    auto r = runProgram(
        "int main() { char buf[16];"
        "  int fd = open(\"/in.txt\", 0);"
        "  int n = read(fd, buf, 3);"
        "  buf[n] = 0;"
        "  close(fd);"
        "  int out = open(\"/out.txt\", 1);"
        "  write(out, buf, n);"
        "  close(out);"
        "  return n; }",
        spec);
    EXPECT_EQ(r.exitCode, 3);
    bool found = false;
    for (const auto &rec : r.outputs) {
        if (rec.channel == "file:/out.txt" && rec.payload == "abc")
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(KernelTest, OpenMissingFileFails)
{
    auto r = runProgram(
        "int main() { return open(\"/missing\", 0); }");
    EXPECT_EQ(r.exitCode, -1);
}

TEST(KernelTest, AppendMode)
{
    os::WorldSpec spec;
    spec.files["/log"] = "AB";
    auto r = runProgram(
        "int main() { int fd = open(\"/log\", 2);"
        "  write(fd, \"CD\", 2); close(fd);"
        "  char buf[8];"
        "  int rd = open(\"/log\", 0);"
        "  int n = read(rd, buf, 8);"
        "  return n; }",
        spec);
    EXPECT_EQ(r.exitCode, 4);
}

TEST(KernelTest, LseekWhence)
{
    os::WorldSpec spec;
    spec.files["/f"] = "0123456789";
    auto r = runProgram(
        "int main() { char b[4];"
        "  int fd = open(\"/f\", 0);"
        "  lseek(fd, 4, 0);"       // absolute
        "  read(fd, b, 1);"        // '4'
        "  lseek(fd, 2, 1);"       // relative -> 7
        "  int x = b[0];"
        "  read(fd, b, 1);"        // '7'
        "  return (x - '0') * 10 + (b[0] - '0'); }",
        spec);
    EXPECT_EQ(r.exitCode, 47);
}

TEST(KernelTest, ScriptedPeerResponses)
{
    os::WorldSpec spec;
    spec.peers["api.example.com"].responses = {"pong", "done"};
    auto r = runProgram(
        "int main() { char buf[32];"
        "  int s = socket();"
        "  if (connect(s, \"api.example.com\") < 0) { return 1; }"
        "  send(s, \"ping\", 4);"
        "  int n = recv(s, buf, 32);"
        "  buf[n] = 0;"
        "  if (strcmp(buf, \"pong\") != 0) { return 2; }"
        "  n = recv(s, buf, 32);"
        "  buf[n] = 0;"
        "  if (strcmp(buf, \"done\") != 0) { return 3; }"
        "  n = recv(s, buf, 32);"   // script exhausted
        "  return n; }",
        spec);
    EXPECT_EQ(r.exitCode, 0);
}

TEST(KernelTest, EchoPeer)
{
    os::WorldSpec spec;
    spec.peers["echo"].echo = true;
    auto r = runProgram(
        "int main() { char buf[32];"
        "  int s = socket(); connect(s, \"echo\");"
        "  send(s, \"marco\", 5);"
        "  int n = recv(s, buf, 32); buf[n] = 0;"
        "  if (strcmp(buf, \"marco\") == 0) { return 7; }"
        "  return 1; }",
        spec);
    EXPECT_EQ(r.exitCode, 7);
}

TEST(KernelTest, ServerAcceptLoop)
{
    os::WorldSpec spec;
    spec.incoming.push_back({"GET /a"});
    spec.incoming.push_back({"GET /b"});
    auto r = runProgram(
        "int main() { char req[64]; int served = 0;"
        "  int s = socket(); listen(s, 80);"
        "  while (1) {"
        "    int c = accept(s);"
        "    if (c < 0) { break; }"
        "    int n = recv(c, req, 64); req[n] = 0;"
        "    send(c, \"OK\", 2);"
        "    close(c);"
        "    served = served + 1;"
        "  }"
        "  return served; }",
        spec);
    EXPECT_EQ(r.exitCode, 2);
}

TEST(KernelTest, GetEnvPresentAndMissing)
{
    os::WorldSpec spec;
    spec.env["MODE"] = "fast";
    auto r = runProgram(
        "int main() { char buf[16];"
        "  int n = getenv(\"MODE\", buf, 16);"
        "  if (n < 0) { return 100; }"
        "  buf[n] = 0;"
        "  int missing = getenv(\"NOPE\", buf, 16);"
        "  if (missing != 0 - 1) { return 101; }"
        "  return strlen(\"fast\"); }",
        spec);
    EXPECT_EQ(r.exitCode, 4);
}

TEST(KernelTest, StatReportsSizeAndMtime)
{
    os::WorldSpec spec;
    spec.files["/data"] = "xyzzy";
    auto r = runProgram(
        "int main() { char st[16];"
        "  if (stat(\"/data\", st) != 0) { return 1; }"
        "  int size = st[0];"  // low byte of size
        "  return size; }",
        spec);
    EXPECT_EQ(r.exitCode, 5);
}

TEST(KernelTest, MkdirUnlinkRenameFromGuest)
{
    auto r = runProgram(
        "int main() {"
        "  if (mkdir(\"/tmp\") != 0) { return 1; }"
        "  int fd = open(\"/tmp/a\", 1);"
        "  write(fd, \"x\", 1); close(fd);"
        "  if (rename(\"/tmp/a\", \"/tmp/b\") != 0) { return 2; }"
        "  if (open(\"/tmp/a\", 0) >= 0) { return 3; }"
        "  if (unlink(\"/tmp/b\") != 0) { return 4; }"
        "  return 0; }");
    EXPECT_EQ(r.exitCode, 0);
}

TEST(KernelTest, NondeterminismSeedsDiffer)
{
    os::WorldSpec a;
    os::WorldSpec b = a.withNondetVariant(1);
    EXPECT_NE(a.pid, b.pid);
    EXPECT_NE(a.randomSeed, b.randomSeed);

    const char *prog = "int main() { return random() % 1000; }";
    auto ra = runProgram(prog, a);
    auto rb = runProgram(prog, b);
    EXPECT_NE(ra.exitCode, rb.exitCode);
}

TEST(KernelTest, TimeAdvancesMonotonically)
{
    auto r = runProgram(
        "int main() { int t1 = time(); int t2 = time();"
        "  return t2 >= t1; }");
    EXPECT_EQ(r.exitCode, 1);
}

} // namespace
} // namespace ldx
