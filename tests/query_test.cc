/**
 * @file
 * Batch causality-inference engine tests (src/query/): baseline
 * enumeration and classification, scheduler semantics, the result
 * cache (LRU, persistence, record format), and the campaign's
 * determinism contract — byte-identical graphs across worker counts
 * and drivers, and zero dual executions on a warm cache.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <thread>

#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "query/campaign.h"
#include "workloads/workloads.h"

namespace ldx {
namespace {

using query::CampaignConfig;
using query::CampaignResult;
using query::ResultCache;

/** Compile + instrument once per source text. */
const ir::Module &
instrumentedModule(const std::string &source)
{
    static std::map<std::string, std::unique_ptr<ir::Module>> cache;
    auto it = cache.find(source);
    if (it == cache.end()) {
        auto module = lang::compileSource(source);
        instrument::CounterInstrumenter pass(*module);
        pass.run();
        it = cache.emplace(source, std::move(module)).first;
    }
    return *it->second;
}

const char *kMixedProgram = R"(
int main() {
    char secret[16];
    getenv("SECRET", secret, 16);
    char buf[8];
    int fd = open("/data.txt", 0);
    read(fd, buf, 4);
    int t = time();
    int r = random();
    char out[8];
    itoa(secret[0] + buf[0], out);
    print(out, strlen(out));
    return 0;
}
)";

os::WorldSpec
mixedWorld()
{
    os::WorldSpec world;
    world.env["SECRET"] = "abc";
    world.files["/data.txt"] = "data";
    return world;
}

// ---------------------------------------------------------------------
// Enumeration
// ---------------------------------------------------------------------

TEST(Enumerate, ClassifiesSourcesAndSinks)
{
    query::BaselineEnumeration base = query::enumerateBaseline(
        instrumentedModule(kMixedProgram), mixedWorld(), {});

    std::map<std::string, const query::SourceCandidate *> byId;
    for (const query::SourceCandidate &s : base.sources)
        byId[s.id] = &s;

    ASSERT_TRUE(byId.count("src:env:env:SECRET"));
    EXPECT_TRUE(byId["src:env:env:SECRET"]->queryable);
    ASSERT_TRUE(byId.count("src:file:path:/data.txt"));
    EXPECT_TRUE(byId["src:file:path:/data.txt"]->queryable);
    ASSERT_TRUE(byId.count("src:clock:nondet:clock"));
    EXPECT_FALSE(byId["src:clock:nondet:clock"]->queryable);
    ASSERT_TRUE(byId.count("src:rand:nondet:rand"));
    EXPECT_FALSE(byId["src:rand:nondet:rand"]->queryable);

    ASSERT_EQ(base.sinks.size(), 1u);
    EXPECT_EQ(base.sinks[0].id, "sink:console");
    EXPECT_EQ(base.sinks[0].events.size(), 1u);

    EXPECT_EQ(base.queryableSources().size(), 2u);
    EXPECT_FALSE(base.trapped);
    EXPECT_EQ(base.exitCode, 0);
}

TEST(Enumerate, IsDeterministic)
{
    auto a = query::enumerateBaseline(instrumentedModule(kMixedProgram),
                                      mixedWorld(), {});
    auto b = query::enumerateBaseline(instrumentedModule(kMixedProgram),
                                      mixedWorld(), {});
    ASSERT_EQ(a.totalEvents, b.totalEvents);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].id, b.events[i].id);
        EXPECT_EQ(a.events[i].sysNo, b.events[i].sysNo);
        EXPECT_EQ(a.events[i].resource, b.events[i].resource);
        EXPECT_EQ(a.events[i].payloadHash, b.events[i].payloadHash);
    }
    ASSERT_EQ(a.sources.size(), b.sources.size());
    for (std::size_t i = 0; i < a.sources.size(); ++i)
        EXPECT_EQ(a.sources[i].id, b.sources[i].id);
}

TEST(Enumerate, EventCapDropsTailButKeepsAggregation)
{
    query::EnumerateOptions opts;
    opts.eventCap = 2;
    auto base = query::enumerateBaseline(
        instrumentedModule(kMixedProgram), mixedWorld(), opts);
    EXPECT_EQ(base.events.size(), 2u);
    EXPECT_GT(base.droppedEvents, 0u);
    EXPECT_EQ(base.totalEvents,
              base.events.size() + base.droppedEvents);
    // Aggregation still saw the dropped events.
    EXPECT_EQ(base.sinks.size(), 1u);
}

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

TEST(Scheduler, RunsEveryIndexExactlyOnce)
{
    std::vector<std::atomic<int>> hits(64);
    query::SchedulerConfig cfg;
    cfg.jobs = 4;
    cfg.queueCap = 2; // admission control engaged
    auto outcomes = query::runOnPool(
        hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, cfg);
    ASSERT_EQ(outcomes.size(), hits.size());
    for (std::size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i].load(), 1) << i;
        EXPECT_EQ(outcomes[i].status, query::RunStatus::Done) << i;
        EXPECT_GE(outcomes[i].worker, 0);
        EXPECT_LT(outcomes[i].worker, 4);
    }
}

TEST(Scheduler, ExceptionBecomesFailedOutcome)
{
    query::SchedulerConfig cfg;
    cfg.jobs = 2;
    auto outcomes = query::runOnPool(
        4,
        [&](std::size_t i) {
            if (i == 2)
                throw std::runtime_error("query exploded");
        },
        cfg);
    EXPECT_EQ(outcomes[0].status, query::RunStatus::Done);
    EXPECT_EQ(outcomes[2].status, query::RunStatus::Failed);
    EXPECT_EQ(outcomes[2].error, "query exploded");
}

TEST(Scheduler, PreSetCancelDrainsWithoutRunning)
{
    std::atomic<bool> cancel{true};
    std::atomic<int> ran{0};
    query::SchedulerConfig cfg;
    cfg.jobs = 2;
    cfg.cancel = &cancel;
    auto outcomes = query::runOnPool(
        8, [&](std::size_t) { ran.fetch_add(1); }, cfg);
    EXPECT_EQ(ran.load(), 0);
    for (const query::RunOutcome &o : outcomes)
        EXPECT_EQ(o.status, query::RunStatus::Cancelled);
}

// ---------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------

query::CacheKey
keyN(int n)
{
    query::CacheKey k;
    k.programHash = 1;
    k.worldHash = 2;
    k.sourceId = "src:env:env:K" + std::to_string(n) + "@whole";
    k.policy = "off-by-one";
    return k;
}

query::QueryVerdict
verdictN(int n)
{
    query::QueryVerdict v;
    v.causality = true;
    v.quality = query::VerdictQuality::Decoupled;
    v.edges.push_back({"sink:console", "sink-value-diff",
                       static_cast<std::uint64_t>(n)});
    v.masterExit = 0;
    v.slaveExit = n;
    v.alignedSyscalls = 10 + n;
    v.syscallDiffs = 1;
    v.findings = 1;
    return v;
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    ResultCache cache(2, "", nullptr);
    cache.store(keyN(1), verdictN(1));
    cache.store(keyN(2), verdictN(2));
    EXPECT_TRUE(cache.lookup(keyN(1)).has_value()); // refresh 1
    cache.store(keyN(3), verdictN(3));              // evicts 2
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_FALSE(cache.lookup(keyN(2)).has_value());
    ASSERT_TRUE(cache.lookup(keyN(1)).has_value());
    ASSERT_TRUE(cache.lookup(keyN(3)).has_value());
    EXPECT_EQ(*cache.lookup(keyN(3)), verdictN(3));
}

TEST(Cache, RecordRoundTripsAndRejectsCorruption)
{
    query::QueryVerdict v = verdictN(7);
    v.edges.push_back({"sink:ret-token", "ret-token-diff", 2});
    std::string text = query::serializeVerdict(v);
    auto parsed = query::parseVerdict(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(*parsed == v);

    EXPECT_FALSE(query::parseVerdict("not a record").has_value());
    EXPECT_FALSE(query::parseVerdict("").has_value());
}

// A torn write must read as a clean miss, never a partial verdict.
// The v2 record ends with a checksummed `end` sentinel, so EVERY
// proper prefix is invalid — including ones cut at a line boundary,
// which v1 would have accepted silently (dropping trailing edges).
TEST(Cache, TruncatedRecordIsRejectedAtEveryLength)
{
    query::QueryVerdict v = verdictN(7);
    v.edges.push_back({"sink:ret-token", "ret-token-diff", 2});
    std::string text = query::serializeVerdict(v);
    ASSERT_TRUE(query::parseVerdict(text).has_value());

    for (std::size_t len = 0; len < text.size(); ++len) {
        EXPECT_FALSE(
            query::parseVerdict(text.substr(0, len)).has_value())
            << "prefix of " << len << " bytes parsed";
    }
    // Flipping any body byte breaks the checksum.
    std::string flipped = text;
    flipped[text.size() / 2] ^= 0x20;
    EXPECT_FALSE(query::parseVerdict(flipped).has_value());
}

TEST(Cache, TornDiskRecordIsACleanMiss)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "ldx_torn_cache_test";
    std::filesystem::remove_all(dir);
    {
        ResultCache cache(8, dir.string(), nullptr);
        cache.store(keyN(1), verdictN(1));
    }
    // Tear the record mid-way, as a crash between write and rename
    // never could (the write is to a temp file) but a short disk or
    // an external truncation still can.
    std::filesystem::path record;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        record = e.path();
    ASSERT_FALSE(record.empty());
    std::string text;
    {
        std::ifstream in(record, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        text = buf.str();
    }
    {
        std::ofstream out(record,
                          std::ios::binary | std::ios::trunc);
        out << text.substr(0, text.size() / 2);
    }
    ResultCache fresh(8, dir.string(), nullptr);
    EXPECT_FALSE(fresh.lookup(keyN(1)).has_value());
    EXPECT_EQ(fresh.hits(), 0u);
    EXPECT_EQ(fresh.misses(), 1u);
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Sharded cache (the `ldx serve` process-wide tier)
// ---------------------------------------------------------------------

TEST(ShardedCache, LookupStoreAndCapacitySplit)
{
    query::ShardedResultCache cache(8, 3, "", nullptr);
    EXPECT_EQ(cache.shardCount(), 3u);
    cache.store(keyN(1), verdictN(1));
    auto v = cache.lookup(keyN(1));
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(*v == verdictN(1));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_FALSE(cache.lookup(keyN(999)).has_value());
    EXPECT_EQ(cache.misses(), 1u);

    // Shards never exceed the global capacity even when it does not
    // divide evenly: per-shard caps sum to exactly the global cap.
    query::ShardedResultCache tiny(2, 8, "", nullptr);
    EXPECT_LE(tiny.shardCount(), 2u);
    for (int n = 0; n < 64; ++n)
        tiny.store(keyN(n), verdictN(n));
    EXPECT_LE(tiny.size(), 2u);
}

// The serve contention contract: 8 threads hammering the same and
// disjoint keys compute each digest exactly once, respect the global
// LRU cap, and report hit/miss totals that add up.
TEST(ShardedCache, ContendedGetOrComputeIsExactlyOnce)
{
    constexpr int kThreads = 8;
    constexpr int kSharedKeys = 4;
    constexpr int kPrivateKeys = 8;
    query::ShardedResultCache cache(4096, 8, "", nullptr);

    std::atomic<int> computes{0};
    std::atomic<int> lookups{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            // Same keys from every thread: one compute per key.
            for (int n = 0; n < kSharedKeys; ++n) {
                query::QueryVerdict v = cache.getOrCompute(
                    keyN(n), [&] {
                        computes.fetch_add(1);
                        return verdictN(n);
                    });
                EXPECT_TRUE(v == verdictN(n));
                lookups.fetch_add(1);
            }
            // Disjoint keys per thread: one compute each, no waits.
            for (int n = 0; n < kPrivateKeys; ++n) {
                int id = 1000 + t * kPrivateKeys + n;
                bool computed = false;
                query::QueryVerdict v = cache.getOrCompute(
                    keyN(id),
                    [&] {
                        computes.fetch_add(1);
                        return verdictN(id);
                    },
                    &computed);
                EXPECT_TRUE(computed);
                EXPECT_TRUE(v == verdictN(id));
                lookups.fetch_add(1);
            }
        });
    }
    for (std::thread &th : threads)
        th.join();

    EXPECT_EQ(computes.load(),
              kSharedKeys + kThreads * kPrivateKeys);
    EXPECT_EQ(cache.size(),
              static_cast<std::size_t>(kSharedKeys +
                                       kThreads * kPrivateKeys));
    EXPECT_EQ(cache.evictions(), 0u);
    // Metric parity: every getOrCompute resolves as exactly one hit
    // or one miss, and misses equal the computes.
    EXPECT_EQ(cache.hits() + cache.misses(),
              static_cast<std::uint64_t>(lookups.load()));
    EXPECT_EQ(cache.misses(),
              static_cast<std::uint64_t>(computes.load()));
}

TEST(ShardedCache, GlobalLruCapHoldsUnderContention)
{
    constexpr std::size_t kCap = 16;
    query::ShardedResultCache cache(kCap, 4, "", nullptr);
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&, t] {
            for (int n = 0; n < 100; ++n) {
                int id = t * 1000 + n;
                cache.getOrCompute(keyN(id),
                                   [&] { return verdictN(id); });
            }
        });
    for (std::thread &th : threads)
        th.join();
    EXPECT_LE(cache.size(), kCap);
    EXPECT_GT(cache.evictions(), 0u);
}

TEST(Cache, DiskTierSurvivesANewInstance)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "ldx_query_cache_test";
    std::filesystem::remove_all(dir);

    {
        ResultCache cache(8, dir.string(), nullptr);
        cache.store(keyN(1), verdictN(1));
    }
    ResultCache fresh(8, dir.string(), nullptr);
    auto v = fresh.lookup(keyN(1));
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(*v == verdictN(1));
    EXPECT_EQ(fresh.hits(), 1u);
    std::filesystem::remove_all(dir);
}

TEST(Cache, WorldHashCoversEveryInputKind)
{
    os::WorldSpec a = mixedWorld();
    os::WorldSpec b = a;
    EXPECT_EQ(query::hashWorld(a), query::hashWorld(b));
    b.env["SECRET"] = "abd";
    EXPECT_NE(query::hashWorld(a), query::hashWorld(b));

    os::WorldSpec c = a;
    c.files["/data.txt"] = "datb";
    EXPECT_NE(query::hashWorld(a), query::hashWorld(c));

    os::WorldSpec d = a;
    d.incoming.push_back({"GET /"});
    EXPECT_NE(query::hashWorld(a), query::hashWorld(d));
}

// ---------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------

CampaignConfig
fastConfig()
{
    CampaignConfig cfg;
    cfg.deadlineSeconds = 20.0;
    return cfg;
}

TEST(Campaign, FindsTheLeakInTheDemoProgram)
{
    CampaignResult res = query::runCampaign(
        instrumentedModule(kMixedProgram), mixedWorld(), fastConfig());
    // 2 queryable sources x 3 default policies.
    EXPECT_EQ(res.queries.size(), 6u);
    EXPECT_EQ(res.dualExecutions, 6u);
    EXPECT_TRUE(res.anyCausality());
    bool env_edge = false;
    for (const query::GraphEdge &e : res.graph.edges)
        env_edge |= e.from == "src:env:env:SECRET" &&
                    e.to == "sink:console";
    EXPECT_TRUE(env_edge) << res.graph.toJson();
}

TEST(Campaign, GraphIsByteIdenticalAcrossJobsAndDrivers)
{
    const ir::Module &module = instrumentedModule(kMixedProgram);
    CampaignConfig base = fastConfig();

    CampaignConfig jobs8 = base;
    jobs8.jobs = 8;
    jobs8.queueCap = 2;

    CampaignConfig threaded = base;
    threaded.jobs = 4;
    threaded.threaded = true;

    std::string ref =
        query::runCampaign(module, mixedWorld(), base).graph.toJson();
    EXPECT_EQ(ref,
              query::runCampaign(module, mixedWorld(), jobs8)
                  .graph.toJson());
    EXPECT_EQ(ref,
              query::runCampaign(module, mixedWorld(), threaded)
                  .graph.toJson());
}

TEST(Campaign, WarmCacheDoesZeroDualExecutions)
{
    std::filesystem::path dir = std::filesystem::temp_directory_path() /
                                "ldx_query_campaign_cache";
    std::filesystem::remove_all(dir);

    const ir::Module &module = instrumentedModule(kMixedProgram);
    CampaignConfig cfg = fastConfig();
    cfg.cacheDir = dir.string();

    CampaignResult cold = query::runCampaign(module, mixedWorld(), cfg);
    EXPECT_EQ(cold.cacheHits, 0u);
    EXPECT_EQ(cold.dualExecutions, cold.queries.size());

    CampaignResult warm = query::runCampaign(module, mixedWorld(), cfg);
    EXPECT_EQ(warm.dualExecutions, 0u);
    EXPECT_EQ(warm.cacheHits, warm.queries.size());
    EXPECT_EQ(cold.graph.toJson(), warm.graph.toJson());

    std::filesystem::remove_all(dir);
}

TEST(Campaign, CancelledCampaignReportsCancelledQueries)
{
    std::atomic<bool> cancel{true};
    CampaignConfig cfg = fastConfig();
    cfg.cancel = &cancel;
    CampaignResult res = query::runCampaign(
        instrumentedModule(kMixedProgram), mixedWorld(), cfg);
    EXPECT_EQ(res.dualExecutions, 0u);
    EXPECT_EQ(res.cancelledQueries, res.queries.size());
    EXPECT_FALSE(res.anyCausality());
}

TEST(Campaign, MetricsLandInTheRegistry)
{
    obs::Registry registry;
    CampaignConfig cfg = fastConfig();
    cfg.registry = &registry;
    CampaignResult res = query::runCampaign(
        instrumentedModule(kMixedProgram), mixedWorld(), cfg);
    obs::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counterOr("campaign.dual.executions"),
              res.dualExecutions);
    EXPECT_EQ(snap.counterOr("campaign.queries.total"),
              res.queries.size());
    EXPECT_EQ(snap.counterOr("campaign.cache.misses"),
              res.cacheMisses);
    EXPECT_EQ(snap.counterOr("campaign.sched.completed"),
              res.queries.size());
    // Phase timing covered the pipeline.
    bool saw_execute = false;
    for (const obs::PhaseSample &p : res.phases)
        saw_execute |= p.name == "campaign.execute";
    EXPECT_TRUE(saw_execute);
}

// Acceptance: every vulnerable workload's campaign reports an edge
// from the known injected source to an observable sink.
TEST(Campaign, VulnerableWorkloadsReportTheInjectedEdge)
{
    const char *names[] = {"gif2png",  "mp3info", "prozilla",
                           "yopsweb",  "ngircd",  "gzip-alloc"};
    for (const char *name : names) {
        const workloads::Workload *w = workloads::findWorkload(name);
        ASSERT_NE(w, nullptr) << name;
        CampaignConfig cfg = fastConfig();
        cfg.sinks = w->sinks;
        cfg.policies = {core::MutationStrategy::OffByOne};
        CampaignResult res =
            query::runCampaign(workloads::workloadModule(*w, true),
                               w->world(w->defaultScale), cfg);
        EXPECT_TRUE(res.anyCausality()) << name;

        ASSERT_FALSE(w->sources.empty()) << name;
        std::string key = w->sources.front().resourceKey();
        bool from_injected = false;
        for (const query::GraphEdge &e : res.graph.edges)
            from_injected |= key.empty()
                                 ? e.from.find("incoming") !=
                                       std::string::npos
                                 : e.from.find(key) !=
                                       std::string::npos;
        EXPECT_TRUE(from_injected)
            << name << ": no edge from " << key << " in "
            << res.graph.toJson();
    }
}

} // namespace
} // namespace ldx
