/**
 * @file
 * Figure 1 of the paper as running code: the four canonical cases
 * comparing counterfactual causality (LDX) against program-dependence
 * tracking (the TaintGrind/LIBDFT baselines).
 *
 *   (a) data dependence        -> strong CC: both approaches detect;
 *   (b) control dependence     -> strong CC: only LDX detects;
 *   (c) control dependence     -> weak CC: baselines with control-dep
 *       tracking over-report; LDX stays silent;
 *   (d) "absence of update"    -> strong CC missed even by
 *       control-dep tracking; LDX detects.
 */
#include <iostream>

#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "ldx/engine.h"
#include "taint/tracker.h"

using namespace ldx;

namespace {

struct Case
{
    const char *name;
    const char *source;
    const char *master_secret;
    const char *expectation;
};

void
runCase(const Case &c)
{
    os::WorldSpec world;
    world.env["X"] = c.master_secret;
    std::vector<core::SourceSpec> sources = {core::SourceSpec::env("X")};

    // LDX.
    auto module = lang::compileSource(c.source);
    instrument::CounterInstrumenter pass(*module);
    pass.run();
    core::EngineConfig cfg;
    cfg.sources = sources;
    core::DualEngine engine(*module, world, cfg);
    bool ldx = engine.run().causality();

    // Dependence-based baselines on an uninstrumented module.
    auto plain = lang::compileSource(c.source);
    auto taint_run = [&](taint::TaintPolicy policy) {
        taint::TaintRunOptions opts;
        opts.policy = policy;
        opts.sources = sources;
        return !taint::runTaintAnalysis(*plain, world, opts)
                    .taintedSinks.empty();
    };
    bool data_dep = taint_run(taint::TaintPolicy::taintgrind());
    bool ctl_dep = taint_run(taint::TaintPolicy::controlAugmented());

    std::cout << c.name << "\n  LDX: " << (ldx ? "reports" : "silent")
              << "   data-dep taint: "
              << (data_dep ? "reports" : "silent")
              << "   data+control taint: "
              << (ctl_dep ? "reports" : "silent") << "\n  ("
              << c.expectation << ")\n\n";
}

} // namespace

int
main()
{
    const Case cases[] = {
        {"(a) strong CC by data dependence",
         R"(int main() {
    char b[8];
    getenv("X", b, 8);
    int y = b[0] + 1;
    char o[8]; o[0] = y; print(o, 1);
    return 0;
})",
         "5", "everyone detects"},
        {"(b) strong CC by control dependence",
         R"(int main() {
    char b[8];
    getenv("X", b, 8);
    int s = 0;
    if (b[0] == '1') { s = 10; } else { s = 20; }
    char o[8]; o[0] = s; print(o, 1);
    return 0;
})",
         "1", "only LDX and control-dep tracking detect"},
        {"(c) weak CC: many-to-one mapping",
         R"(int main() {
    char b[8];
    getenv("X", b, 8);
    int s = atoi(b);
    int x = 0;
    if (s > 10) { x = 1; }
    char o[8]; o[0] = x + '0'; print(o, 1);
    return 0;
})",
         "50",
         "LDX correctly silent; control-dep tracking over-reports"},
        {"(d) strong CC through a non-update",
         R"(int main() {
    char b[8];
    getenv("X", b, 8);
    int s = b[0] - '0';
    int x = 0;
    if (s != 1) { x = 1; }
    char o[8]; o[0] = x + '0'; print(o, 1);
    return 0;
})",
         "1", "only LDX detects (x is never written on this path)"},
    };

    for (const Case &c : cases)
        runCase(c);
    return 0;
}
