/**
 * @file
 * The paper's loop example (Figs. 4-5): the trip counts of two nested
 * loops come from the input; LDX aligns the executions iteration by
 * iteration at the back-edge barriers, resets the counter so it stays
 * bounded, and raises it above every in-loop value on exit. The
 * example shows the barrier pairings and the realignment at the final
 * send() even when the two executions iterate different numbers of
 * times.
 */
#include <iostream>

#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "ldx/engine.h"

int
main()
{
    using namespace ldx;

    const char *program = R"(
int main() {
    char buf[8];
    int fd = open("/nm.txt", 0);
    read(fd, buf, 2);
    int n = buf[0] - '0';
    int m = buf[1] - '0';
    int total = 0;
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < m; j = j + 1) {
            char one[2];
            read(fd, one, 1);
            total = total + one[0];
        }
        int lg = open("/log.txt", 2);
        write(lg, "x", 1);
        close(lg);
    }
    char out[24];
    itoa(total, out);
    int s = socket();
    connect(s, "sink.example.com");
    send(s, out, strlen(out));
    return 0;
}
)";

    auto module = lang::compileSource(program);
    instrument::CounterInstrumenter pass(*module);
    auto stats = pass.run();
    std::cout << "instrumented loops: " << stats.loops
              << " (both carry syscalls, so both get barriers)\n";

    auto world = [](char n, char m) {
        os::WorldSpec w;
        w.files["/nm.txt"] = std::string{n, m} + std::string(64, 'z');
        w.peers["sink.example.com"] = {};
        return w;
    };

    {
        std::cout << "\n== equal trip counts (n=2, m=3): aligned ==\n";
        core::EngineConfig cfg;
        core::DualEngine engine(*module, world('2', '3'), cfg);
        auto res = engine.run();
        std::cout << "barrier pairings: " << res.barrierPairings
                  << ", syscall diffs: " << res.syscallDiffs
                  << ", causality: "
                  << (res.causality() ? "yes" : "no") << "\n";
    }

    {
        std::cout << "\n== mutated trip count (the paper's Fig. 5 "
                     "setting) ==\n";
        core::EngineConfig cfg;
        cfg.sources = {core::SourceSpec::file("/nm.txt", 0)};
        cfg.sinks.file = false; // the network send is the sink
        cfg.recordTrace = true;
        core::DualEngine engine(*module, world('2', '3'), cfg);
        auto res = engine.run();
        std::cout << "synchronization actions (cf. the paper's "
                     "Fig. 5):\n";
        for (const core::TraceEvent &evt : res.trace)
            std::cout << "  " << evt.describe() << "\n";
        std::cout << "barrier pairings: " << res.barrierPairings
                  << ", syscall diffs tolerated: " << res.syscallDiffs
                  << "\n";
        for (const core::Finding &f : res.findings)
            std::cout << "  " << f.describe() << "\n";
        std::cout << (res.causality()
                          ? "=> loop bound leaks to the sink\n"
                          : "=> no causality\n");
    }
    return 0;
}
