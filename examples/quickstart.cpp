/**
 * @file
 * Quickstart: compile a MiniC program, instrument it with the LDX
 * counter pass, and dual-execute it to check whether a secret
 * environment variable leaks to the network.
 *
 *   $ ./quickstart
 */
#include <iostream>

#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "ldx/engine.h"

int
main()
{
    using namespace ldx;

    // 1. A program under test, written in MiniC. It reads a secret,
    //    derives a value from it through *control flow only* (no data
    //    flow), and sends the result to a remote host.
    const char *program = R"(
int main() {
    char secret[16];
    getenv("SECRET", secret, 16);
    int grade = 0;
    if (secret[0] == 'a') { grade = 1; }
    else if (secret[0] == 'b') { grade = 2; }
    else { grade = 3; }
    char msg[24];
    itoa(grade, msg);
    int s = socket();
    connect(s, "collector.example.com");
    send(s, msg, strlen(msg));
    return 0;
}
)";

    // 2. Compile and instrument (the LLVM-pass analogue).
    auto module = lang::compileSource(program);
    instrument::CounterInstrumenter pass(*module);
    auto stats = pass.run();
    std::cout << "instrumented: " << stats.insertedOps
              << " counter ops over " << stats.originalInstrs
              << " instructions, max static counter "
              << stats.maxStaticCnt << "\n";

    // 3. Describe the environment and declare the source to mutate.
    os::WorldSpec world;
    world.env["SECRET"] = "alpha";
    world.peers["collector.example.com"] = {};

    core::EngineConfig cfg;
    cfg.sources = {core::SourceSpec::env("SECRET")};

    // 4. Dual-execute: LDX runs the master on the real input and a
    //    slave on the mutated input, coupling them through the
    //    counter-based alignment protocol.
    core::DualEngine engine(*module, world, cfg);
    core::DualResult result = engine.run();

    std::cout << "aligned syscalls: " << result.alignedSyscalls
              << ", misaligned: " << result.syscallDiffs << "\n";
    if (result.causality()) {
        std::cout << "LEAK: the sink causally depends on SECRET\n";
        for (const core::Finding &f : result.findings)
            std::cout << "  " << f.describe() << "\n";
    } else {
        std::cout << "no causality detected\n";
    }
    // Note: instruction-level taint tracking would miss this leak —
    // grade never data-depends on the secret.
    return result.causality() ? 0 : 1;
}
