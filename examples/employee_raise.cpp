/**
 * @file
 * The paper's running example (Figs. 2-3): an employee-record program
 * whose secret 'title' selects between SRaise() and MRaise(); the
 * computed raise reaches a remote site. This example prints the
 * instrumented IR of the three functions (showing the counter
 * compensation the paper draws along CFG edges) and then the dual
 * execution's verdict for mutating the title.
 */
#include <iostream>

#include "instrument/instrument.h"
#include "ir/printer.h"
#include "lang/compiler.h"
#include "ldx/engine.h"

int
main()
{
    using namespace ldx;

    const char *program = R"(
int SRaise(int salary, char *contract) {
    char buf[16];
    int fd = open(contract, 0);
    read(fd, buf, 8);
    close(fd);
    return salary / 100 + (buf[0] - '0');
}

int MRaise(int salary, int age) {
    int raise = SRaise(salary, "/contract_m.txt");
    if (age > 10) {
        int fd = open("/seniors.txt", 2);
        write(fd, "senior\n", 7);
        close(fd);
    }
    return raise + 100;
}

int main() {
    char title[16];
    char name[16];
    int raise = 0;
    getenv("TITLE", title, 16);
    getenv("NAME", name, 16);
    if (title[0] == 'S') {
        raise = SRaise(4000, "/contract_s.txt");
    } else {
        raise = MRaise(4000, 5);
    }
    char buf[32];
    itoa(raise, buf);
    int s = socket();
    connect(s, "hr.example.com");
    send(s, name, strlen(name));
    send(s, buf, strlen(buf));
    return 0;
}
)";

    auto module = lang::compileSource(program);
    instrument::CounterInstrumenter pass(*module);
    pass.run();

    std::cout << "== instrumented IR (note the cnt += compensation on "
                 "branch edges) ==\n";
    ir::printModule(std::cout, *module);

    for (const char *fn : {"SRaise", "MRaise", "main"}) {
        std::cout << "FCNT(" << fn << ") = "
                  << pass.fcnt().at(module->findFunction(fn)->id())
                  << "\n";
    }

    os::WorldSpec world;
    world.env["TITLE"] = "STAFF";
    world.env["NAME"] = "alice";
    world.files["/contract_s.txt"] = "3xxxxxxx";
    world.files["/contract_m.txt"] = "5xxxxxxx";
    world.peers["hr.example.com"] = {};

    std::cout << "\n== dual execution: mutate TITLE (STAFF -> "
                 "slave variant) ==\n";
    core::EngineConfig cfg;
    cfg.sources = {core::SourceSpec::env("TITLE")};
    cfg.recordTrace = true;
    core::DualEngine engine(*module, world, cfg);
    auto result = engine.run();

    std::cout << "\nsynchronization actions (cf. the paper's "
                 "Fig. 3):\n";
    for (const core::TraceEvent &evt : result.trace)
        std::cout << "  " << evt.describe() << "\n";

    std::cout << "misaligned syscalls tolerated: "
              << result.syscallDiffs << "\n";
    std::cout << "findings:\n";
    for (const core::Finding &f : result.findings)
        std::cout << "  " << f.describe() << "\n";
    std::cout << (result.causality()
                      ? "=> the raise leaks the title (via control "
                        "dependence)\n"
                      : "=> no leak\n");
    return 0;
}
