/**
 * @file
 * Attack detection on a vulnerable server (the paper's second
 * application): a stack-smashing request corrupts the return token of
 * the handler; LDX mutates the untrusted input and observes the
 * corruption value change at the return-address sink — strong
 * causality between attacker bytes and control state.
 */
#include <iostream>

#include "instrument/instrument.h"
#include "lang/compiler.h"
#include "ldx/engine.h"

int
main()
{
    using namespace ldx;

    const char *server = R"(
int handle(char *req) {
    char buf[16];
    strcpy(buf, req);       // classic unbounded copy
    return strlen(buf);
}

int main() {
    char req[256];
    int s = socket();
    listen(s, 80);
    int c = accept(s);
    int n = recv(c, req, 255);
    req[n] = 0;
    handle(req);
    send(c, "200 OK", 6);
    close(c);
    return 0;
}
)";

    auto module = lang::compileSource(server);
    instrument::CounterInstrumenter pass(*module);
    pass.run();

    auto run = [&](const std::string &request, const char *label) {
        os::WorldSpec world;
        world.incoming.push_back({request});
        core::EngineConfig cfg;
        // Mutate the untrusted network input; sinks are the return
        // tokens and allocation sizes (the paper's attack sinks).
        cfg.sources = {core::SourceSpec::incoming(20)};
        cfg.sinks.net = false;
        cfg.sinks.retTokens = true;
        cfg.sinks.allocSizes = true;
        core::DualEngine engine(*module, world, cfg);
        auto res = engine.run();
        std::cout << label << ": ";
        if (res.causality()) {
            std::cout << "ATTACK DETECTED\n";
            for (const core::Finding &f : res.findings)
                std::cout << "  " << f.describe() << "\n";
        } else {
            std::cout << "benign\n";
        }
        if (res.masterTrapped)
            std::cout << "  (master crashed: " << res.masterTrapMessage
                      << ")\n";
    };

    run("GET /index.html", "normal request ");
    run("GET " + std::string(64, 'A'), "exploit request");
    return 0;
}
